"""The per-server partitioning agent (§4.2–4.3, online).

Each silo runs one :class:`PartitionAgent`.  The agent

* periodically **folds** per-actor communication counters into a
  Space-Saving summary of the silo's heaviest incident edges ("we keep
  the relevant counters locally at each actor, and periodically update
  the global graph data-structure by traversing all the actors from a
  single thread", §4.3), with exponential decay so weights track current
  rates on a churning graph;
* periodically **initiates** Algorithm 1: builds its partial
  :class:`~repro.core.partitioning.view.PartitionView`, ranks peers by
  anticipated cost reduction, and walks the list until one accepts;
* **serves** incoming exchange requests, enforcing the cooldown ("the
  exchange is rejected if a previous exchange took place less than a
  minute ago"), and
* executes the resulting migrations through the silo's transparent
  opportunistic mechanism.

Control messages ride the simulated network but bypass the SEDA stages —
they are small, infrequent, and the paper never charges them against the
data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...graph.spacesaving import SpaceSaving
from ...obs.events import ExchangeEvent, PartitionRoundEvent
from .candidate import rank_peers
from .protocol import ExchangeRequest, ExchangeResponse, handle_request
from .view import PartitionView

__all__ = ["PartitioningConfig", "PartitionAgent"]

_CONTROL_MESSAGE_SIZE = 1024


@dataclass
class PartitioningConfig:
    """Knobs of the online protocol.

    Attributes:
        round_period: seconds between exchange attempts per server.
        stats_period: seconds between counter folds into the edge summary.
        cooldown: a server rejects incoming exchanges within this many
            seconds of its last one (the paper uses 60 s).
        candidate_fraction: candidate-set size as a share of local actors.
        candidate_max: hard cap on the candidate-set size k.
        delta: imbalance tolerance in actor count.
        edge_capacity: Space-Saving summary size per server.
        decay: per-fold multiplicative decay of sampled edge weights.
        max_peers_tried: how far down the ranked peer list to walk.
        warmup: do not initiate exchanges before this simulated time.
    """

    round_period: float = 10.0
    stats_period: float = 2.0
    cooldown: float = 60.0
    candidate_fraction: float = 0.05
    candidate_max: int = 64
    delta: int = 16
    edge_capacity: int = 10_000
    decay: float = 0.8
    max_peers_tried: int = 3
    warmup: float = 0.0


class PartitionAgent:
    """Algorithm 1 running on one silo."""

    def __init__(self, runtime, silo, config: Optional[PartitioningConfig] = None):
        self.runtime = runtime
        self.silo = silo
        self.config = config or PartitioningConfig()
        self.edges: SpaceSaving = SpaceSaving(self.config.edge_capacity)
        self.peers: dict[int, "PartitionAgent"] = {}
        self.last_exchange_time = -float("inf")
        self.exchanges_initiated = 0
        self.exchanges_accepted = 0
        self.exchanges_rejected = 0
        self._running = False
        self._rng = runtime.rng.stream(f"partition.agent.{silo.server_id}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin folding and initiating rounds (staggered across silos)."""
        self._running = True
        sim = self.runtime.sim
        n = self.runtime.num_servers
        fold_offset = self.config.stats_period * (self.silo.server_id + 1) / (n + 1)
        round_offset = (
            self.config.warmup
            + self.config.round_period * (self.silo.server_id + 1) / (n + 1)
        )
        sim.schedule(fold_offset, self._fold_tick)
        sim.schedule(round_offset, self._round_tick)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # Edge statistics (§4.3)
    # ------------------------------------------------------------------
    def _fold_tick(self) -> None:
        if not self._running:
            return
        self.fold_counters()
        self.runtime.sim.schedule(self.config.stats_period, self._fold_tick)

    def fold_counters(self) -> None:
        """Fold the silo's communication table into the Space-Saving
        edge summary.

        One pass over the flat silo-level :class:`CommTable` — O(active
        edges), not O(activations).  Entries whose source has since
        deactivated or migrated away are skipped, matching the original
        per-activation semantics where counters died with the
        activation.
        """
        self.edges.decay(self.config.decay)
        hosted = self.silo.activations
        for (src, peer), weight in self.silo.comm_table.drain():
            if src in hosted:
                self.edges.offer((src, peer), weight)
        # Purge sampled edges whose local endpoint has migrated away.
        stale = [key for key, _ in self.edges.items() if key[0] not in hosted]
        for key in stale:
            self.edges.forget(key)

    # ------------------------------------------------------------------
    # View construction
    # ------------------------------------------------------------------
    def candidate_k(self) -> int:
        local = max(1, self.silo.num_activations)
        k = int(self.config.candidate_fraction * local)
        return max(1, min(self.config.candidate_max, k))

    def build_view(self) -> PartitionView:
        hosted = self.silo.activations
        edges: dict = {}
        for (v, u), weight in self.edges.items():
            if v in hosted and not hosted[v].deactivating:
                edges.setdefault(v, {})[u] = weight
        census = self.runtime.census()
        return PartitionView(
            server_id=self.silo.server_id,
            edges=edges,
            locate=self.runtime.locate,
            size=census.get(self.silo.server_id, 0),
            peer_sizes=census,
        )

    # ------------------------------------------------------------------
    # Initiator side
    # ------------------------------------------------------------------
    def _round_tick(self) -> None:
        if not self._running:
            return
        self.initiate_round()
        jitter = self._rng.uniform(0.9, 1.1)
        self.runtime.sim.schedule(self.config.round_period * jitter, self._round_tick)

    def initiate_round(self) -> None:
        """One Alg.-1 invocation: pick the best peer, fall through rejections."""
        view = self.build_view()
        k = self.candidate_k()
        proposals = rank_peers(view, k)
        if not proposals:
            return
        self.exchanges_initiated += 1
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(PartitionRoundEvent(
                self.runtime.sim.now, server=self.silo.server_id,
                proposals=len(proposals), candidates=k))
        self._try_peer(view.size, proposals, 0)

    def _try_peer(self, my_size: int, proposals, index: int) -> None:
        if index >= min(len(proposals), self.config.max_peers_tried):
            return
        proposal = proposals[index]
        request = ExchangeRequest(
            initiator=self.silo.server_id,
            target=proposal.peer,
            candidates=proposal.candidates,
            initiator_size=my_size,
        )
        peer_agent = self.peers[proposal.peer]
        self.runtime.network.deliver(
            _CONTROL_MESSAGE_SIZE,
            peer_agent._receive_request,
            request,
            self,
            my_size,
            proposals,
            index,
        )

    def _receive_response(
        self,
        request: ExchangeRequest,
        response: ExchangeResponse,
        my_size: int,
        proposals,
        index: int,
    ) -> None:
        obs = self.runtime.obs
        if not response.accepted:
            self.exchanges_rejected += 1
            if obs is not None:
                obs.events.emit(ExchangeEvent(
                    self.runtime.sim.now, initiator=self.silo.server_id,
                    target=request.target, accepted=False,
                    reason=response.rejection_reason))
            self._try_peer(my_size, proposals, index + 1)
            return
        self.exchanges_accepted += 1
        outcome = response.outcome
        assert outcome is not None
        if obs is not None:
            obs.events.emit(ExchangeEvent(
                self.runtime.sim.now, initiator=self.silo.server_id,
                target=request.target, accepted=True, moves=outcome.moves,
                sent=len(outcome.accepted), received=len(outcome.returned),
                estimated_gain=outcome.estimated_gain))
        if outcome.moves == 0:
            # Accepted-but-empty: q's fresher knowledge found no useful
            # exchange; fall through to the next-best peer.
            self._try_peer(my_size, proposals, index + 1)
            return
        for vertex in outcome.accepted:
            self.silo.migrate(vertex, request.target)
        self.last_exchange_time = self.runtime.sim.now

    # ------------------------------------------------------------------
    # Responder side
    # ------------------------------------------------------------------
    def _receive_request(
        self,
        request: ExchangeRequest,
        initiator_agent: "PartitionAgent",
        my_size: int,
        proposals,
        index: int,
    ) -> None:
        response = self.serve_request(request)
        self.runtime.network.deliver(
            _CONTROL_MESSAGE_SIZE,
            initiator_agent._receive_response,
            request,
            response,
            my_size,
            proposals,
            index,
        )

    def serve_request(self, request: ExchangeRequest) -> ExchangeResponse:
        """q's side of Alg. 1, including cooldown and T0 migrations."""
        recently = (
            self.runtime.sim.now - self.last_exchange_time < self.config.cooldown
        )
        view = self.build_view()
        response = handle_request(
            view,
            request,
            k=self.candidate_k(),
            delta=self.config.delta,
            exchanged_recently=recently,
        )
        if response.accepted and response.outcome is not None:
            for vertex in response.outcome.returned:
                self.silo.migrate(vertex, request.initiator)
            if response.outcome.moves:
                self.last_exchange_time = self.runtime.sim.now
        return response
