"""Greedy two-heap exchange-subset selection (§4.2).

When q accepts an exchange request it must pick S0 ⊆ S (which of p's
candidates to take) and T0 ⊆ T (which of its own to send back).  Exact
balanced partitioning is NP-hard, so the paper uses an iterative greedy
procedure:

1. build two max-heaps keyed by transfer score — one over S (p→q moves),
   one over T (q→p moves);
2. repeatedly take the highest-scored vertex overall; if moving it would
   violate the balance constraint between p and q, take the best vertex
   from the *other* heap instead;
3. after each marked move, update the scores of every remaining candidate
   that shares an edge with the moved vertex (a p→q move raises the score
   of its S-side neighbors by 2w and lowers its T-side neighbors' by 2w,
   and symmetrically);
4. stop when no positive-score move is feasible.

Only positive-score vertices are ever marked, which is what gives
Theorem 1 its monotone cost decrease.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional, Sequence

from .candidate import Candidate

__all__ = ["ExchangeOutcome", "greedy_exchange"]

Vertex = Hashable
ServerId = int


@dataclass
class ExchangeOutcome:
    """Result of one greedy exchange between p (initiator) and q."""

    accepted: list[Vertex] = field(default_factory=list)   # S0: move p -> q
    returned: list[Vertex] = field(default_factory=list)   # T0: move q -> p
    estimated_gain: float = 0.0                            # sum of marked scores

    @property
    def moves(self) -> int:
        return len(self.accepted) + len(self.returned)


class _Side:
    """One of the two heaps, with lazy invalidation on score updates."""

    def __init__(self, candidates: Sequence[Candidate], seq: "itertools.count"):
        self.score: dict[Vertex, float] = {}
        self.edges: dict[Vertex, dict[Vertex, float]] = {}
        self.marked: set[Vertex] = set()
        self._heap: list[tuple[float, int, Vertex]] = []
        self._seq = seq
        for cand in candidates:
            self.score[cand.vertex] = cand.score
            self.edges[cand.vertex] = cand.edges
            heapq.heappush(self._heap, (-cand.score, next(seq), cand.vertex))

    def push(self, v: Vertex) -> None:
        heapq.heappush(self._heap, (-self.score[v], next(self._seq), v))

    def peek(self) -> Optional[tuple[Vertex, float]]:
        """Best unmarked candidate with a *positive, current* score."""
        while self._heap:
            neg, _, v = self._heap[0]
            if v in self.marked or self.score.get(v) != -neg:
                heapq.heappop(self._heap)  # stale or already taken
                continue
            if -neg <= 0:
                return None
            return v, -neg
        return None

    def mark(self, v: Vertex) -> None:
        self.marked.add(v)

    def bump(self, v: Vertex, delta: float) -> None:
        if v in self.score and v not in self.marked:
            self.score[v] += delta
            self.push(v)


def _edge_weight(side_a: _Side, a: Vertex, side_b: _Side, b: Vertex) -> float:
    """Weight of edge (a, b) as known by either endpoint's shipped list."""
    w = side_a.edges.get(a, {}).get(b, 0.0)
    if w:
        return w
    return side_b.edges.get(b, {}).get(a, 0.0)


def greedy_exchange(
    s_candidates: Sequence[Candidate],
    t_candidates: Sequence[Candidate],
    size_p: float,
    size_q: float,
    delta: float,
    max_moves: Optional[int] = None,
    vertex_sizes: Optional[Mapping[Vertex, float]] = None,
) -> ExchangeOutcome:
    """Jointly select S0 and T0 under the balance constraint.

    Args:
        s_candidates: p's shipped candidates (scores as *re-computed by q*
            — callers re-score before calling; see
            :func:`repro.core.partitioning.protocol.rescore_candidates`).
        t_candidates: q's own candidate set toward p.
        size_p: current load of p (actor count; or total actor size when
            ``vertex_sizes`` is given — the §4.2 extension).
        size_q: current load of q, same units.
        delta: imbalance tolerance (the paper's δ), same units.
        max_moves: optional hard cap on total marked moves, an extra
            safety bound on migration churn.
        vertex_sizes: optional per-vertex sizes for the paper's
            different-actor-sizes extension; a missing vertex counts 1.

    Returns:
        :class:`ExchangeOutcome` with the accepted and returned vertices.
    """
    if delta < 0:
        raise ValueError("delta must be >= 0")
    seq = itertools.count()
    s_side = _Side(s_candidates, seq)
    t_side = _Side(t_candidates, seq)
    outcome = ExchangeOutcome()

    def vsize(v: Vertex) -> float:
        if vertex_sizes is None:
            return 1.0
        return vertex_sizes.get(v, 1.0)

    moved_to_q = 0.0  # total size marked p -> q
    moved_to_p = 0.0  # total size marked q -> p

    def gap(extra_s: float, extra_t: float) -> float:
        a = moved_to_q + extra_s
        b = moved_to_p + extra_t
        return abs((size_p - a + b) - (size_q + a - b))

    def balance_ok(extra_s: float, extra_t: float) -> bool:
        # Within tolerance, or strictly shrinking a gap that already
        # exceeds it (sizes drift via exchanges with *other* peers; a
        # strict <= delta check would freeze such pairs even though a
        # positive-score, gap-reducing move both lowers cost and restores
        # balance).
        new_gap = gap(extra_s, extra_t)
        return new_gap <= delta or new_gap < gap(0.0, 0.0)

    while True:
        if max_moves is not None and outcome.moves >= max_moves:
            break
        best_s = s_side.peek()
        best_t = t_side.peek()
        s_ok = best_s is not None and balance_ok(vsize(best_s[0]), 0.0)
        t_ok = best_t is not None and balance_ok(0.0, vsize(best_t[0]))

        take_s: Optional[bool] = None
        if s_ok and t_ok:
            take_s = best_s[1] >= best_t[1]
        elif s_ok:
            take_s = True
        elif t_ok:
            take_s = False
        else:
            break  # nothing positive is feasible

        if take_s:
            v, score = best_s  # type: ignore[misc]
            s_side.mark(v)
            outcome.accepted.append(v)
            outcome.estimated_gain += score
            moved_to_q += vsize(v)
            # v moved p -> q: S-side neighbors (still at p) gain 2w — their
            # edge to v flips from local-at-p to would-be-local-at-q;
            # T-side neighbors (at q, leaving for p) lose 2w.
            for u in list(s_side.score):
                if u is not v and u not in s_side.marked:
                    w = _edge_weight(s_side, u, s_side, v)
                    if w:
                        s_side.bump(u, 2.0 * w)
            for u in list(t_side.score):
                if u not in t_side.marked:
                    w = _edge_weight(t_side, u, s_side, v)
                    if w:
                        t_side.bump(u, -2.0 * w)
        else:
            v, score = best_t  # type: ignore[misc]
            t_side.mark(v)
            outcome.returned.append(v)
            outcome.estimated_gain += score
            moved_to_p += vsize(v)
            for u in list(t_side.score):
                if u is not v and u not in t_side.marked:
                    w = _edge_weight(t_side, u, t_side, v)
                    if w:
                        t_side.bump(u, 2.0 * w)
            for u in list(s_side.score):
                if u not in s_side.marked:
                    w = _edge_weight(s_side, u, t_side, v)
                    if w:
                        s_side.bump(u, -2.0 * w)
    return outcome
