"""Pairwise coordination protocol (Algorithm 1).

The five steps of the paper's Alg. 1, as pure logic over
:class:`~repro.core.partitioning.view.PartitionView`:

1. p sends q an exchange request with candidate set S
   (:func:`build_request`, using :func:`repro.core.partitioning.candidate.rank_peers`);
2. q rejects if it exchanged recently (cooldown);
3. otherwise q builds its own candidate set T toward p, re-scores p's
   shipped candidates against its fresher knowledge
   (:func:`rescore_candidates`), and
4. runs the greedy two-heap procedure to pick S0 and T0
   (:func:`handle_request`);
5. the transport layer then migrates T0 to p and notifies p of S0.

Transport (who carries the messages, with what latency) is the host's
job — the online coordinator uses the simulated control plane; the
offline driver calls these functions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from .candidate import Candidate, candidate_set
from .exchange import ExchangeOutcome, greedy_exchange
from .transfer_score import transfer_score
from .view import PartitionView

__all__ = [
    "ExchangeRequest",
    "ExchangeResponse",
    "build_request",
    "rescore_candidates",
    "handle_request",
]

Vertex = Hashable
ServerId = int


@dataclass
class ExchangeRequest:
    """Step 1: p's proposal to q."""

    initiator: ServerId
    target: ServerId
    candidates: list[Candidate]
    initiator_size: int  # |Vp| as known by p, for q's balance bookkeeping


@dataclass
class ExchangeResponse:
    """Steps 2-4: q's decision."""

    accepted: bool
    outcome: Optional[ExchangeOutcome] = None
    rejection_reason: str = ""

    @property
    def accepted_vertices(self) -> list[Vertex]:
        return self.outcome.accepted if self.outcome else []

    @property
    def returned_vertices(self) -> list[Vertex]:
        return self.outcome.returned if self.outcome else []


def build_request(view: PartitionView, target: ServerId, k: int) -> ExchangeRequest:
    """Construct p's request toward a chosen peer."""
    return ExchangeRequest(
        initiator=view.server_id,
        target=target,
        candidates=candidate_set(view, target, k),
        initiator_size=view.size,
    )


def rescore_candidates(
    view_q: PartitionView, request: ExchangeRequest
) -> list[Candidate]:
    """Re-evaluate p's candidates with q's knowledge (§4.2).

    The graph may have changed since p sampled it, and p's view was
    partial; q therefore recomputes each R_{p,q}(v) from the shipped edge
    list, resolving endpoint locations with its own knowledge first and
    falling back to p's shipped beliefs.
    """

    def locate(u: Vertex, shipped: dict[Vertex, ServerId]) -> Optional[ServerId]:
        loc = view_q.locate(u)
        if loc is not None:
            return loc
        return shipped.get(u)

    rescored = []
    for cand in request.candidates:
        score = transfer_score(
            cand.edges,
            lambda u, shipped=cand.endpoint_locations: locate(u, shipped),
            request.initiator,
            view_q.server_id,
        )
        rescored.append(
            Candidate(cand.vertex, score, cand.edges, cand.endpoint_locations)
        )
    return rescored


def handle_request(
    view_q: PartitionView,
    request: ExchangeRequest,
    k: int,
    delta: int,
    exchanged_recently: bool,
    max_moves: Optional[int] = None,
) -> ExchangeResponse:
    """q's side of Alg. 1 (steps 2-4)."""
    if exchanged_recently:
        return ExchangeResponse(accepted=False, rejection_reason="cooldown")
    if request.target != view_q.server_id:
        return ExchangeResponse(accepted=False, rejection_reason="misrouted")

    s_rescored = rescore_candidates(view_q, request)
    t_candidates = candidate_set(view_q, request.initiator, k)
    outcome = greedy_exchange(
        s_rescored,
        t_candidates,
        size_p=request.initiator_size,
        size_q=view_q.size,
        delta=delta,
        max_moves=max_moves,
    )
    return ExchangeResponse(accepted=True, outcome=outcome)
