"""A server's local view of the actor communication graph.

§4.2: "Every server p maintains the list of edges from the vertices of p
to other vertices in the system."  The view is *partial* (only heavy
edges survive Space-Saving sampling) and *possibly stale* (locations
change under it); the protocol is explicitly designed to tolerate both.

:class:`PartitionView` is the interface between the pure algorithm
(:mod:`.candidate`, :mod:`.exchange`) and whichever host feeds it —
the online :class:`~repro.core.partitioning.coordinator.PartitionAgent`
inside the actor runtime, or the offline driver used for static-graph
experiments.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Optional

__all__ = ["PartitionView"]

Vertex = Hashable
ServerId = int


class PartitionView:
    """What server ``server_id`` knows when it runs a partitioning round.

    Args:
        server_id: this server (p).
        edges: local vertex -> {neighbor -> weight}; the (sampled) heavy
            edges incident to p's vertices.
        locate: best-effort resolver from vertex to hosting server.  For
            the offline driver it is ground truth; online it consults the
            location cache and directory.
        size: number of actors hosted here (|Vp|) — may exceed
            ``len(edges)`` because actors without sampled edges still
            count toward balance.
        peer_sizes: believed |Vq| per remote server, for the balance
            constraint.
    """

    def __init__(
        self,
        server_id: ServerId,
        edges: Mapping[Vertex, Mapping[Vertex, float]],
        locate: Callable[[Vertex], Optional[ServerId]],
        size: int,
        peer_sizes: Mapping[ServerId, int],
    ):
        self.server_id = server_id
        self.edges = edges
        self._locate = locate
        self.size = size
        self.peer_sizes = dict(peer_sizes)

    def locate(self, vertex: Vertex) -> Optional[ServerId]:
        """Where this server believes ``vertex`` lives (None if unknown).

        Local vertices are always resolved locally — a server knows
        exactly what it hosts.
        """
        if vertex in self.edges:
            return self.server_id
        return self._locate(vertex)

    def neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        return self.edges.get(vertex, {})

    def local_vertices(self):
        return self.edges.keys()

    def peers(self) -> list[ServerId]:
        return [q for q in self.peer_sizes if q != self.server_id]
