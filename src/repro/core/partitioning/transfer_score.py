"""Transfer scores (§4.2).

For a vertex v hosted on p, the transfer score toward server q is the
communication-cost reduction p expects from migrating v to q:

    R_{p,q}(v) = sum_{u in Vq} w(v,u)  -  sum_{u in Vp} w(v,u)

i.e. edges that would *become local* minus edges that would *become
remote*.  Edges to third servers are unaffected by the move and do not
appear.  A positive score means the move lowers the global cut by exactly
R (when the view is accurate), which is what makes Theorem 1's monotone-
decrease argument work.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Optional

__all__ = ["transfer_score"]

Vertex = Hashable
ServerId = int


def transfer_score(
    neighbors: Mapping[Vertex, float],
    locate: Callable[[Vertex], Optional[ServerId]],
    source: ServerId,
    target: ServerId,
) -> float:
    """R_{source,target}(v) for a vertex whose incident edges are given.

    Args:
        neighbors: v's neighbor -> weight map (sampled heavy edges).
        locate: vertex -> hosting server resolver; unknown locations
            (None) are treated as third-party servers and contribute
            nothing, which errs toward fewer migrations.
        source: the server currently hosting v (p).
        target: the candidate destination (q).
    """
    if source == target:
        raise ValueError("source and target servers must differ")
    score = 0.0
    for u, w in neighbors.items():
        loc = locate(u)
        if loc == target:
            score += w
        elif loc == source:
            score -= w
    return score
