"""ActOp: the integrated optimization framework (§6.3).

Attaches the paper's two mechanisms to a running cluster:

* a :class:`~repro.core.partitioning.coordinator.PartitionAgent` per silo
  (locality-aware actor partitioning, §4), and
* a :class:`~repro.core.threads.controller.ModelBasedController` per silo
  (latency-optimized thread allocation, §5).

Either can be enabled alone — the evaluation benches exercise all three
combinations, mirroring Figs. 10, 11(a) and 11(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..actor.runtime import ActorRuntime
from .partitioning.coordinator import PartitionAgent, PartitioningConfig
from .threads.controller import ModelBasedController

__all__ = ["ThreadControllerConfig", "ActOp"]


@dataclass
class ThreadControllerConfig:
    """Per-silo model-based thread controller knobs (§5)."""

    eta: float = 1e-4          # the paper calibrates 100 µs/thread
    period: float = 10.0
    blocking_stages: Sequence[str] = ("worker",)
    min_threads: int = 1
    max_threads: Optional[int] = None
    min_events: int = 50


class ActOp:
    """The runtime optimizer: partitioning + thread allocation."""

    def __init__(
        self,
        runtime: ActorRuntime,
        partitioning: Optional[PartitioningConfig] = None,
        thread_allocation: Optional[ThreadControllerConfig] = None,
    ):
        if partitioning is None and thread_allocation is None:
            raise ValueError("enable at least one of the two optimizations")
        self.runtime = runtime
        self.agents: list[PartitionAgent] = []
        self.controllers: list[ModelBasedController] = []

        if partitioning is not None:
            for silo in runtime.silos:
                self.agents.append(PartitionAgent(runtime, silo, partitioning))
            peer_map = {agent.silo.server_id: agent for agent in self.agents}
            for agent in self.agents:
                agent.peers = peer_map

        if thread_allocation is not None:
            cfg = thread_allocation
            for silo in runtime.silos:
                self.controllers.append(
                    ModelBasedController(
                        runtime.sim,
                        silo.server,
                        eta=cfg.eta,
                        period=cfg.period,
                        blocking_stages=cfg.blocking_stages,
                        min_threads=cfg.min_threads,
                        max_threads=cfg.max_threads,
                        min_events=cfg.min_events,
                    )
                )

    def start(self) -> None:
        # Thread controllers have no runtime handle, so the event log is
        # wired here; partition agents read runtime.obs at emit time.
        obs = getattr(self.runtime, "obs", None)
        if obs is not None:
            for controller in self.controllers:
                controller.event_log = obs.events
        for agent in self.agents:
            agent.start()
        for controller in self.controllers:
            controller.start()

    def stop(self) -> None:
        for agent in self.agents:
            agent.stop()
        for controller in self.controllers:
            controller.stop()

    # ------------------------------------------------------------------
    @property
    def total_migrations(self) -> int:
        return self.runtime.migrations_total

    def remote_fraction(self) -> float:
        return self.runtime.remote_message_fraction()
