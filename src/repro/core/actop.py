"""ActOp: the integrated optimization framework (§6.3).

Attaches the paper's two mechanisms to a running cluster:

* a :class:`~repro.core.partitioning.coordinator.PartitionAgent` per silo
  (locality-aware actor partitioning, §4), and
* a :class:`~repro.core.threads.controller.ModelBasedController` per silo
  (latency-optimized thread allocation, §5).

Either can be enabled alone — the evaluation benches exercise all three
combinations, mirroring Figs. 10, 11(a) and 11(b).

Configuration goes through :class:`ActOpConfig`, one of the layered
configs consumed by :func:`repro.cluster.build_cluster`; the old
``ActOp(runtime, partitioning=..., thread_allocation=...)`` keyword form
still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from ..actor.runtime import ActorRuntime
from .partitioning.coordinator import PartitionAgent, PartitioningConfig
from .threads.controller import ModelBasedController

__all__ = ["ThreadControllerConfig", "ActOpConfig", "ActOp"]


@dataclass
class ThreadControllerConfig:
    """Per-silo model-based thread controller knobs (§5)."""

    eta: float = 1e-4          # the paper calibrates 100 µs/thread
    period: float = 10.0
    blocking_stages: Sequence[str] = ("worker",)
    min_threads: int = 1
    max_threads: Optional[int] = None
    min_events: int = 50


@dataclass
class ActOpConfig:
    """What the ActOp optimizer runs: partitioning, threads, or both.

    ``None`` for a field disables that mechanism; an all-``None`` config
    (``enabled`` False) means "no optimizer" and is what
    :func:`repro.cluster.build_cluster` treats as "don't build one".
    """

    partitioning: Optional[PartitioningConfig] = None
    thread_allocation: Optional[ThreadControllerConfig] = None

    @property
    def enabled(self) -> bool:
        return (self.partitioning is not None
                or self.thread_allocation is not None)


class ActOp:
    """The runtime optimizer: partitioning + thread allocation."""

    def __init__(
        self,
        runtime: ActorRuntime,
        config: Optional[ActOpConfig] = None,
        *,
        partitioning: Optional[PartitioningConfig] = None,
        thread_allocation: Optional[ThreadControllerConfig] = None,
    ):
        if partitioning is not None or thread_allocation is not None:
            warnings.warn(
                "ActOp(runtime, partitioning=..., thread_allocation=...) is "
                "deprecated; pass ActOpConfig(partitioning=..., "
                "thread_allocation=...) instead",
                DeprecationWarning, stacklevel=2,
            )
            if config is not None:
                raise ValueError(
                    "pass either an ActOpConfig or the deprecated keyword "
                    "arguments, not both")
            config = ActOpConfig(partitioning=partitioning,
                                 thread_allocation=thread_allocation)
        if config is None or not config.enabled:
            raise ValueError("enable at least one of the two optimizations")
        self.config = config
        self.runtime = runtime
        self.agents: list[PartitionAgent] = []
        self.controllers: list[ModelBasedController] = []

        if config.partitioning is not None:
            for silo in runtime.silos:
                self.agents.append(
                    PartitionAgent(runtime, silo, config.partitioning))
            peer_map = {agent.silo.server_id: agent for agent in self.agents}
            for agent in self.agents:
                agent.peers = peer_map

        if config.thread_allocation is not None:
            cfg = config.thread_allocation
            for silo in runtime.silos:
                self.controllers.append(
                    ModelBasedController(
                        runtime.sim,
                        silo.server,
                        eta=cfg.eta,
                        period=cfg.period,
                        blocking_stages=cfg.blocking_stages,
                        min_threads=cfg.min_threads,
                        max_threads=cfg.max_threads,
                        min_events=cfg.min_events,
                    )
                )

    def start(self) -> None:
        # Thread controllers have no runtime handle, so the event log is
        # wired here; partition agents read runtime.obs at emit time.
        obs = getattr(self.runtime, "obs", None)
        if obs is not None:
            for controller in self.controllers:
                controller.event_log = obs.events
        for agent in self.agents:
            agent.start()
        for controller in self.controllers:
            controller.start()

    def stop(self) -> None:
        for agent in self.agents:
            agent.stop()
        for controller in self.controllers:
            controller.stop()

    # ------------------------------------------------------------------
    @property
    def total_migrations(self) -> int:
        return self.runtime.migrations_total

    def remote_fraction(self) -> float:
        return self.runtime.remote_message_fraction()
