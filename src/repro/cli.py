"""Command-line interface: ``python -m repro <command>``.

Five subcommands expose the main experiment drivers without writing any
code:

* ``halo``       — the cluster workload A/B (random vs ActOp), §6.1-style;
* ``heartbeat``  — the single-server thread-allocation experiment, §6.2;
* ``partition``  — offline partitioner comparison on a synthetic graph;
* ``perf``       — simulation-core microbenchmarks with JSON output
  (see :mod:`repro.bench.perf`); every perf PR lands with these numbers;
* ``trace``      — run a workload with :mod:`repro.obs` causal tracing,
  export a Chrome trace-event file (loadable in Perfetto or
  ``chrome://tracing``), and cross-check the trace-derived latency
  breakdown against the stage recorders.

Each prints a result table to stdout; a run that produced no usable
result exits non-zero.  ``perf`` and ``trace`` share the ``--json PATH``
convention (``'-'`` writes pure JSON to stdout, the table to stderr).
They are smoke-level entry points (the full reproduction lives in
``benchmarks/``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Optional, Sequence

from . import __version__
from .bench import perf as perf_suite
from .bench.harness import HaloExperiment, HeartbeatExperiment, improvement
from .bench.reporting import render_table
from .core.partitioning.offline import OfflinePartitioner
from .graph.generators import clustered_graph, power_law_graph, random_graph
from .graph.jabeja import jabeja_partition
from .graph.multilevel import multilevel_partition
from .graph.quality import cut_cost, max_imbalance
from .graph.streaming import streaming_partition

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ActOp (EuroSys 2016) reproduction — experiment CLI",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    halo = sub.add_parser("halo", help="Halo Presence cluster A/B")
    halo.add_argument("--players", type=int, default=1_000)
    halo.add_argument("--load", type=float, default=1.0,
                      help="fraction of the 80%%-CPU operating point")
    halo.add_argument("--servers", type=int, default=10)
    halo.add_argument("--duration", type=float, default=60.0,
                      help="measurement seconds (after an equal warmup)")
    halo.add_argument("--seed", type=int, default=1)
    halo.add_argument("--no-baseline", action="store_true",
                      help="run only the ActOp configuration")
    halo.add_argument("--threads", action="store_true",
                      help="also enable the thread-allocation optimizer")

    hb = sub.add_parser("heartbeat", help="single-server thread allocation")
    hb.add_argument("--rate", type=float, default=15_000.0)
    hb.add_argument("--monitors", type=int, default=800)
    hb.add_argument("--io-wait", type=float, default=0.0,
                    help="synchronous blocking seconds per beat")
    hb.add_argument("--seed", type=int, default=3)

    perf = sub.add_parser("perf", help="simulation-core microbenchmarks")
    perf.add_argument("--smoke", action="store_true",
                      help="CI-sized quick run (seconds, not minutes)")
    perf.add_argument("--repeat", type=int, default=3,
                      help="runs per benchmark; best rate is reported")
    perf.add_argument("--only", nargs="+", metavar="NAME",
                      choices=sorted(perf_suite.BENCHMARKS),
                      help="run only the named benchmarks "
                           f"(choices: {', '.join(sorted(perf_suite.BENCHMARKS))})")
    perf.add_argument("--json", dest="json_path", metavar="PATH",
                      help="write the JSON document here ('-' for stdout)")
    perf.add_argument("--profile", dest="profile_dir", metavar="DIR",
                      help="opt-in cProfile: dump per-benchmark .pstats "
                           "files into DIR (profiles the first repeat)")

    trace = sub.add_parser(
        "trace",
        help="run a workload under causal tracing; export a Chrome trace")
    trace.add_argument("--workload", choices=("halo", "heartbeat", "counter"),
                       default="halo")
    trace.add_argument("--players", type=int, default=200,
                       help="halo: concurrent player target")
    trace.add_argument("--servers", type=int, default=4,
                       help="halo: cluster size")
    trace.add_argument("--rate", type=float, default=None,
                       help="heartbeat/counter: paper-equivalent req/s "
                            "(default: the bench's calibrated rate)")
    trace.add_argument("--warmup", type=float, default=5.0,
                       help="simulated warmup seconds before the traced window")
    trace.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds of the traced window")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--sample", type=float, default=1.0,
                       help="fraction of requests to trace (systematic "
                            "sampling; the recorder cross-check needs 1.0)")
    trace.add_argument("--actop", action="store_true",
                       help="halo: enable both ActOp optimizers so "
                            "migrations/exchanges appear in the event log")
    trace.add_argument("--chrome", metavar="PATH", default="trace-chrome.json",
                       help="Chrome trace-event output file")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="also stream spans+events as JSON lines to PATH")
    trace.add_argument("--json", dest="json_path", metavar="PATH",
                       help="write the summary JSON here ('-' for stdout)")

    part = sub.add_parser("partition", help="offline partitioner comparison")
    part.add_argument("--graph", choices=("clustered", "powerlaw", "random"),
                      default="clustered")
    part.add_argument("--vertices", type=int, default=800)
    part.add_argument("--servers", type=int, default=8)
    part.add_argument("--seed", type=int, default=0)
    part.add_argument(
        "--algorithms", nargs="+",
        choices=("alg1", "multilevel", "jabeja", "streaming"),
        default=["alg1", "multilevel", "jabeja", "streaming"],
    )
    return parser


# ----------------------------------------------------------------------
def _run_halo(args: argparse.Namespace) -> int:
    rows = []
    results = {}
    configs = [(True, "ActOp")] if args.no_baseline else [
        (False, "random placement"), (True, "ActOp")
    ]
    for partitioning, label in configs:
        exp = HaloExperiment(
            load_fraction=args.load,
            players=args.players,
            partitioning=partitioning,
            thread_allocation=partitioning and args.threads,
            num_servers=args.servers,
            seed=args.seed,
            label=label,
        )
        result = exp.run(warmup=args.duration, duration=args.duration)
        results[label] = result
        rows.append([
            label, result.median * 1e3, result.p95 * 1e3, result.p99 * 1e3,
            100 * result.cpu_utilization, 100 * result.remote_fraction,
            result.migrations,
        ])
    print(render_table(
        ["configuration", "median ms", "p95 ms", "p99 ms", "CPU %",
         "remote %", "migrations"],
        rows,
        title=f"Halo Presence — {args.players} players, "
              f"{args.servers} servers, load {args.load:.2f}",
    ))
    if len(results) == 2:
        base, opt = results["random placement"], results["ActOp"]
        print(f"\nimprovement: median {improvement(base.median, opt.median):.0f}%, "
              f"p99 {improvement(base.p99, opt.p99):.0f}%")
    return 0


def _run_heartbeat(args: argparse.Namespace) -> int:
    rows = []
    for optimize, label in ((False, "default (8 per stage)"),
                            (True, "ActOp model-based")):
        exp = HeartbeatExperiment(
            request_rate=args.rate, monitors=args.monitors,
            thread_allocation=optimize, io_wait=args.io_wait, seed=args.seed,
            label=label,
        )
        result = exp.run()
        rows.append([
            label, result.median * 1e3, result.p99 * 1e3,
            100 * result.cpu_utilization, str(result.thread_allocation),
        ])
    print(render_table(
        ["configuration", "median ms", "p99 ms", "CPU %", "allocation"],
        rows,
        title=f"Heartbeat — {args.rate:.0f} req/s on one 8-core server",
    ))
    return 0


def _run_partition(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    if args.graph == "clustered":
        clusters = max(2, args.vertices // 9)
        graph = clustered_graph(clusters, 9, intra_weight=10.0,
                                inter_edges_per_cluster=1, rng=rng)
    elif args.graph == "powerlaw":
        graph = power_law_graph(args.vertices, attach=2, rng=rng)
    else:
        graph = random_graph(args.vertices, mean_degree=6.0, rng=rng)

    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    base = {v: i % args.servers for i, v in enumerate(vertices)}
    rows = [["random placement", cut_cost(graph, base),
             max_imbalance(base, args.servers), 0.0]]

    for algorithm in args.algorithms:
        start = time.perf_counter()
        if algorithm == "alg1":
            part = OfflinePartitioner(graph, args.servers, delta=8, k=64,
                                      seed=args.seed, initial=dict(base))
            part.run(max_sweeps=40)
            assignment = part.assignment
        elif algorithm == "multilevel":
            assignment = multilevel_partition(graph, args.servers,
                                              rng=random.Random(args.seed))
        elif algorithm == "jabeja":
            assignment = jabeja_partition(
                graph, args.servers, rounds=30,
                rng=random.Random(args.seed), initial=dict(base),
            ).assignment
        else:
            assignment = streaming_partition(graph, args.servers,
                                             heuristic="fennel",
                                             rng=random.Random(args.seed))
        elapsed = time.perf_counter() - start
        rows.append([algorithm, cut_cost(graph, assignment),
                     max_imbalance(assignment, args.servers), elapsed])

    print(render_table(
        ["algorithm", "cut cost", "imbalance", "seconds"],
        rows,
        title=f"{args.graph} graph: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges, {args.servers} servers",
        floatfmt=".2f",
    ))
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    import json

    from .bench.harness import CounterExperiment
    from .obs import (
        Observability,
        breakdown_shares,
        cross_check,
        recorder_totals,
        stage_totals,
    )

    if args.workload == "halo":
        exp = HaloExperiment(
            players=args.players, num_servers=args.servers, seed=args.seed,
            partitioning=args.actop, thread_allocation=args.actop,
        )
    elif args.workload == "heartbeat":
        exp = HeartbeatExperiment(
            request_rate=args.rate or 15_000.0, seed=args.seed)
    else:
        exp = CounterExperiment(
            request_rate=args.rate or 15_000.0, seed=args.seed)
    rt = exp.runtime
    obs = Observability(rt, sample_rate=args.sample)
    exp.workload.start()
    actop = getattr(exp, "actop", None)
    if actop is not None:
        actop.start()

    rt.run(until=args.warmup)
    # Private counter snapshots, not StagedServer.begin_window(): the
    # thread-allocation controllers re-arm the server's shared window
    # slot every tick, which would shrink ours to the last tick.
    t0 = obs.begin_recorder_window()
    rt.run(until=args.warmup + args.duration)
    t1 = rt.sim.now
    windows = obs.end_recorder_window()

    tracer = obs.tracer
    full_sampling = args.sample >= 1.0
    check_error = None
    if full_sampling:
        check_error, _ = cross_check(
            stage_totals(tracer.spans, t0, t1), recorder_totals(windows))
    shares = breakdown_shares(tracer.spans, t0, t1)
    event_counts: dict[str, int] = {}
    for record in obs.events:
        kind = type(record).KIND
        event_counts[kind] = event_counts.get(kind, 0) + 1

    obs.write_chrome_trace(args.chrome)
    jsonl_lines = obs.write_jsonl(args.jsonl) if args.jsonl else None

    summary = {
        "schema": 1,
        "workload": args.workload,
        "seed": args.seed,
        "sample_rate": args.sample,
        "warmup_s": args.warmup,
        "duration_s": args.duration,
        "time_scale": exp.time_scale,
        "requests_seen": tracer.requests_seen,
        "traces_started": tracer.traces_started,
        "requests_finished": tracer.requests_finished,
        "spans": len(tracer.spans),
        "spans_dropped": tracer.dropped_spans,
        "runtime_events": len(obs.events),
        "event_counts": event_counts,
        "cross_check_max_rel_err": check_error,
        "breakdown_pct": {k: round(v, 3) for k, v in shares.items()},
        "chrome_trace": args.chrome,
        "jsonl": args.jsonl,
        "jsonl_lines": jsonl_lines,
    }

    out = sys.stderr if args.json_path == "-" else sys.stdout
    print(render_table(
        ["component", "% of e2e"],
        [[name, share] for name, share in shares.items()],
        title=f"trace({args.workload}) — {tracer.requests_finished} traced "
              f"requests, {len(tracer.spans)} spans, "
              f"{len(obs.events)} runtime events",
    ), file=out)
    if check_error is not None:
        print(f"\nrecorder cross-check: max relative error "
              f"{check_error:.2e} (must be < 1e-2)", file=out)
    print(f"Chrome trace written to {args.chrome} "
          f"(open in Perfetto or chrome://tracing)", file=out)
    if args.jsonl:
        print(f"{jsonl_lines} JSONL records written to {args.jsonl}", file=out)

    if args.json_path == "-":
        print(json.dumps(summary, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"summary JSON written to {args.json_path}", file=out)

    if tracer.requests_finished == 0 or not tracer.spans:
        print("trace failed: no traced request completed "
              "(window too short, or sampling too sparse)", file=sys.stderr)
        return 1
    if check_error is not None and check_error > 0.01:
        print(f"trace failed: trace-derived stage totals diverge from the "
              f"stage recorders ({check_error:.4f} > 0.01)", file=sys.stderr)
        return 1
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    from .bench import perf

    try:
        doc = perf.run_suite(
            smoke=args.smoke,
            repeat=args.repeat,
            only=args.only,
            profile_dir=args.profile_dir,
        )
    except Exception as exc:  # failed run -> non-zero exit, not a traceback
        print(f"perf suite failed: {exc}", file=sys.stderr)
        return 1
    if args.json_path == "-":
        # Keep stdout pure JSON so the output can be piped; the human
        # table still reaches the terminal via stderr.
        print(perf.render_results(doc), file=sys.stderr)
        if args.profile_dir:
            print(f"cProfile stats in {args.profile_dir}/<benchmark>.pstats "
                  f"(inspect with python -m pstats)", file=sys.stderr)
        print(perf.main_json(doc))
        return 0
    print(perf.render_results(doc))
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(perf.main_json(doc) + "\n")
        print(f"\nJSON written to {args.json_path}")
    if args.profile_dir:
        print(f"cProfile stats in {args.profile_dir}/<benchmark>.pstats "
              f"(inspect with python -m pstats)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "halo":
        return _run_halo(args)
    if args.command == "heartbeat":
        return _run_heartbeat(args)
    if args.command == "partition":
        return _run_partition(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "trace":
        return _run_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
