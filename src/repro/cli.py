"""Command-line interface: ``python -m repro <command>``.

Eight subcommands expose the main experiment drivers without writing
any code:

* ``halo``       — the cluster workload A/B (random vs ActOp), §6.1-style;
* ``heartbeat``  — the single-server thread-allocation experiment, §6.2;
* ``partition``  — offline partitioner comparison on a synthetic graph;
* ``perf``       — simulation-core microbenchmarks with JSON output
  (see :mod:`repro.bench.perf`); every perf PR lands with these numbers;
* ``trace``      — run a workload with :mod:`repro.obs` causal tracing,
  export a Chrome trace-event file (loadable in Perfetto or
  ``chrome://tracing``), and cross-check the trace-derived latency
  breakdown against the stage recorders;
* ``faults``     — a chaos run: Halo under a :mod:`repro.faults` plan
  (silo kills/recoveries, link degradation) with client-side resilience,
  reporting pre/during/post windows and whether the cluster's
  remote-message fraction re-converged after recovery;
* ``lint``       — the :mod:`repro.analysis` determinism / actor-hygiene
  static pass over the tree (non-zero exit on unwaived findings), with
  ``--sanitize`` adding a Halo slice under the runtime race sanitizer
  and a salted-hash iteration-order probe;
* ``autoscale``  — the Stageflow inference pipeline (:mod:`repro.pools`
  actor pools) under a flash-crowd / diurnal arrival curve with the
  :mod:`repro.autoscale` elastic controller growing and draining silos;
  reports per-window latency + utilization, the controller's decision
  log, and silo-seconds, and exits non-zero if the cluster does not
  re-converge into the utilization band (``--fixed`` runs the
  peak-provisioned baseline instead).

Each prints a result table to stdout; a run that produced no usable
result exits non-zero.  ``perf``, ``trace``, and ``faults`` share the
``--json PATH`` convention (``'-'`` writes pure JSON to stdout, the
table to stderr).  They are smoke-level entry points (the full
reproduction lives in ``benchmarks/``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Optional, Sequence

from . import __version__
from .bench import perf as perf_suite
from .bench.harness import HaloExperiment, HeartbeatExperiment, improvement
from .bench.reporting import render_table
from .core.partitioning.offline import OfflinePartitioner
from .graph.generators import clustered_graph, power_law_graph, random_graph
from .graph.jabeja import jabeja_partition
from .graph.multilevel import multilevel_partition
from .graph.quality import cut_cost, max_imbalance
from .graph.streaming import streaming_partition

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Shared flag groups.  Several subcommands drive the same Halo cluster
# at the same knobs; argparse parents keep the flags (and their help)
# defined once while letting each subcommand pick its own defaults.
# ----------------------------------------------------------------------
def _scale_parent(players: int, servers: int, seed: int) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--players", type=int, default=players,
                        help="halo: concurrent player target")
    parent.add_argument("--servers", type=int, default=servers,
                        help="halo: cluster size")
    parent.add_argument("--seed", type=int, default=seed)
    return parent


def _backend_parent() -> argparse.ArgumentParser:
    """The shared ``--backend`` flag (perf/trace/faults/autoscale).

    Every experiment subcommand advertises the engine choice even where
    only the simulator is implemented today — the unsupported combination
    fails with one consistent, actionable message (see
    :func:`_require_sim_backend`) instead of an unknown-flag error.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--backend", choices=("sim", "asyncio"),
                        default="sim",
                        help="engine: the deterministic simulator (default) "
                             "or the real asyncio runtime")
    return parent


def _require_sim_backend(args: argparse.Namespace, command: str) -> Optional[int]:
    """Return an exit code when ``--backend asyncio`` was asked of a
    simulator-only subcommand, else None."""
    if args.backend == "asyncio":
        print(f"repro {command}: --backend asyncio is not supported here "
              f"(this experiment needs the simulated network/optimizer "
              f"layers); supported: repro perf --backend asyncio",
              file=sys.stderr)
        return 2
    return None


def _window_parent(warmup: Optional[float],
                   duration: float) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--warmup", type=float, default=warmup,
                        help="simulated warmup seconds before measurement"
                             + (" (default: equal to --duration)"
                                if warmup is None else ""))
    parent.add_argument("--duration", type=float, default=duration,
                        help="simulated seconds per measurement window")
    return parent


def _silo_at(spec: str) -> tuple[int, float]:
    """Parse ``SILO@T`` (e.g. ``3@5`` = silo 3, five seconds in)."""
    try:
        silo, _, at = spec.partition("@")
        return int(silo), float(at)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected SILO@T (e.g. 3@5), got {spec!r}")


def _drop_spec(spec: str) -> tuple[float, Optional[float], Optional[float]]:
    """Parse ``PROB[@T1:T2]`` (window defaults to the whole fault phase)."""
    prob, _, window = spec.partition("@")
    try:
        p = float(prob)
        if not window:
            return p, None, None
        t1, _, t2 = window.partition(":")
        return p, float(t1), float(t2)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected PROB or PROB@T1:T2 (e.g. 0.3@5:15), got {spec!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ActOp (EuroSys 2016) reproduction — experiment CLI",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    halo = sub.add_parser(
        "halo", help="Halo Presence cluster A/B",
        parents=[_scale_parent(players=1_000, servers=10, seed=1),
                 _window_parent(warmup=None, duration=60.0)])
    halo.add_argument("--load", type=float, default=1.0,
                      help="fraction of the 80%%-CPU operating point")
    halo.add_argument("--no-baseline", action="store_true",
                      help="run only the ActOp configuration")
    halo.add_argument("--threads", action="store_true",
                      help="also enable the thread-allocation optimizer")

    hb = sub.add_parser("heartbeat", help="single-server thread allocation")
    hb.add_argument("--rate", type=float, default=15_000.0)
    hb.add_argument("--monitors", type=int, default=800)
    hb.add_argument("--io-wait", type=float, default=0.0,
                    help="synchronous blocking seconds per beat")
    hb.add_argument("--seed", type=int, default=3)

    perf = sub.add_parser("perf", help="simulation-core microbenchmarks",
                          parents=[_backend_parent()])
    perf.add_argument("--smoke", action="store_true",
                      help="CI-sized quick run (seconds, not minutes)")
    perf.add_argument("--repeat", type=int, default=3,
                      help="runs per benchmark; best rate is reported")
    perf.add_argument("--only", nargs="+", metavar="NAME",
                      choices=sorted(perf_suite.BENCHMARKS),
                      help="run only the named benchmarks "
                           f"(choices: {', '.join(sorted(perf_suite.BENCHMARKS))})")
    perf.add_argument("--json", dest="json_path", metavar="PATH",
                      help="write the JSON document here ('-' for stdout)")
    perf.add_argument("--profile", dest="profile_dir", metavar="DIR",
                      help="opt-in cProfile: dump per-benchmark .pstats "
                           "files into DIR (profiles the first repeat)")
    perf.add_argument("--scaling", action="store_true",
                      help="run the actor-count scaling curve "
                           "(10k/100k/1M seeded Halo on 10 silos) instead "
                           "of the microbenchmark suite")
    perf.add_argument("--points", nargs="+", type=int, metavar="ACTORS",
                      help="override the scaling-curve actor counts")
    perf.add_argument("--scale-point", dest="scale_point", type=int,
                      metavar="ACTORS",
                      help="measure ONE scaling point in this process "
                           "(used by --scaling to isolate per-point RSS)")
    perf.add_argument("--horizon", type=float, default=30.0,
                      help="simulated seconds per scaling point")
    perf.add_argument("--gate", action="store_true",
                      help="exit non-zero if any scaling point exceeds "
                           "the peak-RSS-per-actor gate")
    perf.add_argument("--no-isolate", dest="isolate", action="store_false",
                      help="measure scaling points in-process instead of "
                           "one subprocess each (peak RSS then compounds)")
    perf.add_argument("--pings", type=int, default=1000,
                      help="asyncio backend: round trips to measure")
    perf.add_argument("--transport", choices=("inproc", "inproc-copy", "tcp"),
                      default="tcp",
                      help="asyncio backend: inter-silo transport "
                           "(inproc-copy = in-process hop with TCP's "
                           "pickle copy semantics)")

    trace = sub.add_parser(
        "trace",
        help="run a workload under causal tracing; export a Chrome trace",
        parents=[_scale_parent(players=200, servers=4, seed=1),
                 _window_parent(warmup=5.0, duration=10.0),
                 _backend_parent()])
    trace.add_argument("--workload", choices=("halo", "heartbeat", "counter"),
                       default="halo")
    trace.add_argument("--rate", type=float, default=None,
                       help="heartbeat/counter: paper-equivalent req/s "
                            "(default: the bench's calibrated rate)")
    trace.add_argument("--sample", type=float, default=1.0,
                       help="fraction of requests to trace (systematic "
                            "sampling; the recorder cross-check needs 1.0)")
    trace.add_argument("--actop", action="store_true",
                       help="halo: enable both ActOp optimizers so "
                            "migrations/exchanges appear in the event log")
    trace.add_argument("--chrome", metavar="PATH", default="trace-chrome.json",
                       help="Chrome trace-event output file")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="also stream spans+events as JSON lines to PATH")
    trace.add_argument("--json", dest="json_path", metavar="PATH",
                       help="write the summary JSON here ('-' for stdout)")

    faults = sub.add_parser(
        "faults",
        help="chaos run: Halo under a fault plan with client resilience",
        parents=[_scale_parent(players=1_000, servers=10, seed=1),
                 _window_parent(warmup=20.0, duration=20.0),
                 _backend_parent()])
    faults.add_argument("--load", type=float, default=0.7,
                        help="fraction of the 80%%-CPU operating point "
                             "(below saturation so recovery is attributable "
                             "to the fault, not queueing)")
    faults.add_argument("--kill", action="append", type=_silo_at, default=[],
                        metavar="SILO@T",
                        help="crash SILO T seconds into the fault phase "
                             "(repeatable; default plan: --kill 1@5 "
                             "--recover 1@15 when no fault flags are given)")
    faults.add_argument("--recover", action="append", type=_silo_at,
                        default=[], metavar="SILO@T",
                        help="restart SILO T seconds into the fault phase "
                             "(repeatable)")
    faults.add_argument("--drop", action="append", type=_drop_spec,
                        default=[], metavar="PROB[@T1:T2]",
                        help="drop each message with probability PROB during "
                             "[T1, T2) of the fault phase (repeatable; "
                             "default window: the whole phase)")
    faults.add_argument("--settle", type=float, default=10.0,
                        help="seconds between the last fault event and the "
                             "post-recovery window")
    faults.add_argument("--timeout", type=float, default=0.5,
                        help="per-attempt call timeout, paper seconds")
    faults.add_argument("--retries", type=int, default=3,
                        help="max attempts per request (1 disables retry)")
    faults.add_argument("--admission", type=int, default=None, metavar="N",
                        help="cap concurrent in-flight client requests at N "
                             "(default: unbounded)")
    faults.add_argument("--shed-policy", choices=("reject", "drop_oldest"),
                        default="reject",
                        help="what to do at the admission cap")
    faults.add_argument("--actop", action="store_true",
                        help="enable both ActOp optimizers")
    faults.add_argument("--json", dest="json_path", metavar="PATH",
                        help="write the summary JSON here ('-' for stdout)")

    auto = sub.add_parser(
        "autoscale",
        help="elastic scaling: the Stageflow pipeline under an arrival "
             "curve with the grow/shrink controller",
        parents=[_backend_parent()])
    auto.add_argument("--servers", type=int, default=6,
                      help="fleet size — the controller's scale-out ceiling")
    auto.add_argument("--processors", type=int, default=2,
                      help="cores per silo (small on purpose: scaling "
                          "decisions show at CI-sized rates)")
    auto.add_argument("--initial", type=int, default=2,
                      help="silos active at t=0 (the rest start parked)")
    auto.add_argument("--min", dest="min_silos", type=int, default=2,
                      help="scale-in floor")
    auto.add_argument("--low", type=float, default=0.35,
                      help="utilization band floor (shrink below this)")
    auto.add_argument("--high", type=float, default=0.70,
                      help="utilization band ceiling (grow above this)")
    auto.add_argument("--period", type=float, default=0.5,
                      help="controller measurement window, seconds")
    auto.add_argument("--cooldown", type=float, default=1.0,
                      help="minimum seconds between scaling plans")
    auto.add_argument("--rate", type=float, default=300.0,
                      help="steady-state arrival rate, requests/second")
    auto.add_argument("--curve", choices=("flash", "diurnal", "flat"),
                      default="flash")
    auto.add_argument("--flash-at", type=float, default=10.0,
                      help="flash crowd start, seconds")
    auto.add_argument("--flash-duration", type=float, default=8.0)
    auto.add_argument("--flash-multiplier", type=float, default=4.0)
    auto.add_argument("--diurnal-period", type=float, default=60.0)
    auto.add_argument("--settle", type=float, default=8.0,
                      help="flash: seconds between the surge ending and "
                           "the post-recovery window")
    auto.add_argument("--warmup", type=float, default=2.0,
                      help="seconds before the first measurement window")
    auto.add_argument("--duration", type=float, default=10.0,
                      help="post-recovery (or per-phase) window length")
    auto.add_argument("--policy",
                      choices=("round_robin", "least_outstanding", "dpa"),
                      default="dpa", help="pool balancing policy")
    auto.add_argument("--seed", type=int, default=3)
    auto.add_argument("--fixed", action="store_true",
                      help="baseline: no controller, all --servers silos "
                           "active for the whole run")
    auto.add_argument("--json", dest="json_path", metavar="PATH",
                      help="write the summary JSON here ('-' for stdout)")

    lint = sub.add_parser(
        "lint",
        help="determinism/actor/API hygiene lint + runtime race sanitizer")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: "
                           "src/repro benchmarks examples)")
    lint.add_argument("--rules", nargs="+", metavar="RULE", default=None,
                      help="run only the named rules (e.g. DET-SET-ITER)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and exit")
    lint.add_argument("--sanitize", action="store_true",
                      help="also run a Halo slice with the runtime race "
                           "sanitizer armed and a salted-hash order probe")
    lint.add_argument("--flow", action="store_true",
                      help="also run the interprocedural message-flow pass "
                           "(static actor interaction graph + FLOW rules)")
    lint.add_argument("--flow-graph", metavar="PATH", default=None,
                      help="write the static actor interaction graph "
                           "(comm_graph edge format JSON) here; implies "
                           "--flow")
    lint.add_argument("--graph-check", metavar="PATH", default=None,
                      help="drive a seeded Halo slice and verify every "
                           "observed comm edge exists in the static graph "
                           "(static ⊇ dynamic); write the diff JSON here; "
                           "implies --flow")
    lint.add_argument("--xbackend", action="store_true",
                      help="also run the cross-backend portability pass "
                           "(XB rules: payload aliasing, picklability, "
                           "turn-split atomicity, persisted-state drift)")
    lint.add_argument("--xb-check", metavar="PATH", default=None,
                      help="drive the asyncio parity programs on the "
                           "deep-copy inproc transport with the payload "
                           "probe armed and verify every dynamic event is "
                           "covered by a static XB finding (static ⊇ "
                           "dynamic); write the report JSON here; implies "
                           "--xbackend")
    lint.add_argument("--par", action="store_true",
                      help="also run the parallel-sharding readiness pass "
                           "(PAR rules: zero lookahead, global mutable "
                           "state, cross-silo conflicts, non-mergeable "
                           "metrics, unportable silo state)")
    lint.add_argument("--par-graph", metavar="PATH", default=None,
                      help="write the lookahead report (network models, "
                           "per-edge lookahead, inferred window bound) "
                           "here; implies --par")
    lint.add_argument("--par-check", metavar="PATH", default=None,
                      help="drive seeded Halo and Stageflow slices with "
                           "the window-barrier shadow armed and verify "
                           "every same-window cross-silo delivery is "
                           "covered by a static PAR finding (static ⊇ "
                           "dynamic); write the report JSON here; implies "
                           "--par")
    lint.add_argument("--waivers", action="store_true",
                      help="report every active '# repro: waive[...]' "
                           "(file, rules, justification) and exit")
    lint.add_argument("--cache", action="store_true",
                      help="cache per-file results under .repro-lint-cache/ "
                           "keyed by mtime+hash; project-wide passes "
                           "(--flow/--xbackend/--par) are cached whole-tree "
                           "keyed by a tree signature")
    lint.add_argument("--requests", type=int, default=2_000,
                      help="sanitizer/graph-check: client requests to drive "
                           "through the Halo slice")
    lint.add_argument("--seed", type=int, default=5,
                      help="sanitizer/graph-check: cluster seed")
    lint.add_argument("--json", dest="json_path", metavar="PATH",
                      help="write the JSON report here ('-' for stdout)")

    part = sub.add_parser("partition", help="offline partitioner comparison")
    part.add_argument("--graph", choices=("clustered", "powerlaw", "random"),
                      default="clustered")
    part.add_argument("--vertices", type=int, default=800)
    part.add_argument("--servers", type=int, default=8)
    part.add_argument("--seed", type=int, default=0)
    part.add_argument(
        "--algorithms", nargs="+",
        choices=("alg1", "multilevel", "jabeja", "streaming"),
        default=["alg1", "multilevel", "jabeja", "streaming"],
    )
    part.add_argument("--backend", choices=("dict", "array"), default="dict",
                      help="graph representation: the nested-dict reference "
                           "or the array-backed paper-scale variant "
                           "(property-tested equivalent)")
    return parser


# ----------------------------------------------------------------------
def _run_halo(args: argparse.Namespace) -> int:
    rows = []
    results = {}
    configs = [(True, "ActOp")] if args.no_baseline else [
        (False, "random placement"), (True, "ActOp")
    ]
    for partitioning, label in configs:
        exp = HaloExperiment(
            load_fraction=args.load,
            players=args.players,
            partitioning=partitioning,
            thread_allocation=partitioning and args.threads,
            num_servers=args.servers,
            seed=args.seed,
            label=label,
        )
        warmup = args.duration if args.warmup is None else args.warmup
        result = exp.run(warmup=warmup, duration=args.duration)
        results[label] = result
        rows.append([
            label, result.median * 1e3, result.p95 * 1e3, result.p99 * 1e3,
            100 * result.cpu_utilization, 100 * result.remote_fraction,
            result.migrations,
        ])
    print(render_table(
        ["configuration", "median ms", "p95 ms", "p99 ms", "CPU %",
         "remote %", "migrations"],
        rows,
        title=f"Halo Presence — {args.players} players, "
              f"{args.servers} servers, load {args.load:.2f}",
    ))
    if len(results) == 2:
        base, opt = results["random placement"], results["ActOp"]
        print(f"\nimprovement: median {improvement(base.median, opt.median):.0f}%, "
              f"p99 {improvement(base.p99, opt.p99):.0f}%")
    return 0


def _run_heartbeat(args: argparse.Namespace) -> int:
    rows = []
    for optimize, label in ((False, "default (8 per stage)"),
                            (True, "ActOp model-based")):
        exp = HeartbeatExperiment(
            request_rate=args.rate, monitors=args.monitors,
            thread_allocation=optimize, io_wait=args.io_wait, seed=args.seed,
            label=label,
        )
        result = exp.run()
        rows.append([
            label, result.median * 1e3, result.p99 * 1e3,
            100 * result.cpu_utilization, str(result.thread_allocation),
        ])
    print(render_table(
        ["configuration", "median ms", "p99 ms", "CPU %", "allocation"],
        rows,
        title=f"Heartbeat — {args.rate:.0f} req/s on one 8-core server",
    ))
    return 0


def _run_partition(args: argparse.Namespace) -> int:
    from .graph.arrayback import ArrayCommGraph
    from .graph.comm_graph import CommGraph

    factory = ArrayCommGraph if args.backend == "array" else CommGraph
    rng = random.Random(args.seed)
    if args.graph == "clustered":
        clusters = max(2, args.vertices // 9)
        graph = clustered_graph(clusters, 9, intra_weight=10.0,
                                inter_edges_per_cluster=1, rng=rng,
                                graph_factory=factory)
    elif args.graph == "powerlaw":
        graph = power_law_graph(args.vertices, attach=2, rng=rng,
                                graph_factory=factory)
    else:
        graph = random_graph(args.vertices, mean_degree=6.0, rng=rng,
                             graph_factory=factory)

    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    base = {v: i % args.servers for i, v in enumerate(vertices)}
    rows = [["random placement", cut_cost(graph, base),
             max_imbalance(base, args.servers), 0.0]]

    for algorithm in args.algorithms:
        start = time.perf_counter()  # repro: waive[DET-WALLCLOCK] -- offline CLI: wall time is displayed, never fed to the sim
        if algorithm == "alg1":
            part = OfflinePartitioner(graph, args.servers, delta=8, k=64,
                                      seed=args.seed, initial=dict(base))
            part.run(max_sweeps=40)
            assignment = part.assignment
        elif algorithm == "multilevel":
            assignment = multilevel_partition(graph, args.servers,
                                              rng=random.Random(args.seed))
        elif algorithm == "jabeja":
            assignment = jabeja_partition(
                graph, args.servers, rounds=30,
                rng=random.Random(args.seed), initial=dict(base),
            ).assignment
        else:
            assignment = streaming_partition(graph, args.servers,
                                             heuristic="fennel",
                                             rng=random.Random(args.seed))
        elapsed = time.perf_counter() - start  # repro: waive[DET-WALLCLOCK] -- offline CLI: wall time is displayed, never fed to the sim
        rows.append([algorithm, cut_cost(graph, assignment),
                     max_imbalance(assignment, args.servers), elapsed])

    print(render_table(
        ["algorithm", "cut cost", "imbalance", "seconds"],
        rows,
        title=f"{args.graph} graph: {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges, {args.servers} servers",
        floatfmt=".2f",
    ))
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    import json

    exit_code = _require_sim_backend(args, "trace")
    if exit_code is not None:
        return exit_code

    from .bench.harness import CounterExperiment
    from .obs import (
        Observability,
        breakdown_shares,
        cross_check,
        recorder_totals,
        stage_totals,
    )

    if args.workload == "halo":
        exp = HaloExperiment(
            players=args.players, num_servers=args.servers, seed=args.seed,
            partitioning=args.actop, thread_allocation=args.actop,
        )
    elif args.workload == "heartbeat":
        exp = HeartbeatExperiment(
            request_rate=args.rate or 15_000.0, seed=args.seed)
    else:
        exp = CounterExperiment(
            request_rate=args.rate or 15_000.0, seed=args.seed)
    rt = exp.runtime
    obs = Observability(rt, sample_rate=args.sample)
    exp.workload.start()
    actop = getattr(exp, "actop", None)
    if actop is not None:
        actop.start()

    rt.run(until=args.warmup)
    # Private counter snapshots, not StagedServer.begin_window(): the
    # thread-allocation controllers re-arm the server's shared window
    # slot every tick, which would shrink ours to the last tick.
    t0 = obs.begin_recorder_window()
    rt.run(until=args.warmup + args.duration)
    t1 = rt.sim.now
    windows = obs.end_recorder_window()

    tracer = obs.tracer
    full_sampling = args.sample >= 1.0
    check_error = None
    if full_sampling:
        check_error, _ = cross_check(
            stage_totals(tracer.spans, t0, t1), recorder_totals(windows))
    shares = breakdown_shares(tracer.spans, t0, t1)
    event_counts: dict[str, int] = {}
    for record in obs.events:
        kind = type(record).KIND
        event_counts[kind] = event_counts.get(kind, 0) + 1

    obs.write_chrome_trace(args.chrome)
    jsonl_lines = obs.write_jsonl(args.jsonl) if args.jsonl else None

    summary = {
        "schema": 1,
        "workload": args.workload,
        "seed": args.seed,
        "sample_rate": args.sample,
        "warmup_s": args.warmup,
        "duration_s": args.duration,
        "time_scale": exp.time_scale,
        "requests_seen": tracer.requests_seen,
        "traces_started": tracer.traces_started,
        "requests_finished": tracer.requests_finished,
        "spans": len(tracer.spans),
        "spans_dropped": tracer.dropped_spans,
        "runtime_events": len(obs.events),
        "event_counts": event_counts,
        "cross_check_max_rel_err": check_error,
        "breakdown_pct": {k: round(v, 3) for k, v in shares.items()},
        "chrome_trace": args.chrome,
        "jsonl": args.jsonl,
        "jsonl_lines": jsonl_lines,
    }

    out = sys.stderr if args.json_path == "-" else sys.stdout
    print(render_table(
        ["component", "% of e2e"],
        [[name, share] for name, share in shares.items()],
        title=f"trace({args.workload}) — {tracer.requests_finished} traced "
              f"requests, {len(tracer.spans)} spans, "
              f"{len(obs.events)} runtime events",
    ), file=out)
    if check_error is not None:
        print(f"\nrecorder cross-check: max relative error "
              f"{check_error:.2e} (must be < 1e-2)", file=out)
    print(f"Chrome trace written to {args.chrome} "
          f"(open in Perfetto or chrome://tracing)", file=out)
    if args.jsonl:
        print(f"{jsonl_lines} JSONL records written to {args.jsonl}", file=out)

    if args.json_path == "-":
        print(json.dumps(summary, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"summary JSON written to {args.json_path}", file=out)

    if tracer.requests_finished == 0 or not tracer.spans:
        print("trace failed: no traced request completed "
              "(window too short, or sampling too sparse)", file=sys.stderr)
        return 1
    if check_error is not None and check_error > 0.01:
        print(f"trace failed: trace-derived stage totals diverge from the "
              f"stage recorders ({check_error:.4f} > 0.01)", file=sys.stderr)
        return 1
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    import json

    exit_code = _require_sim_backend(args, "faults")
    if exit_code is not None:
        return exit_code

    from .faults import (
        AdmissionConfig,
        FaultPlan,
        ResilienceConfig,
        RetryPolicy,
    )

    kills = list(args.kill)
    recovers = list(args.recover)
    drops = list(args.drop)
    if not (kills or recovers or drops):
        kills = [(1, 5.0)]
        recovers = [(1, 15.0)]

    event_times = [t for _, t in kills + recovers]
    event_times += [t2 for _, _, t2 in drops if t2 is not None]
    fault_len = max(event_times, default=0.0) + args.settle

    # The timeline is warmup | pre window | fault phase | post window;
    # fault-flag times count from the start of the fault phase, and plan
    # times are absolute simulator seconds, so shift by the offset.
    offset = args.warmup + args.duration
    plan = FaultPlan()
    for silo, t in kills:
        plan.crash(offset + t, silo)
    for silo, t in recovers:
        plan.restart(offset + t, silo)
    for prob, t1, t2 in drops:
        plan.degrade(offset + (t1 or 0.0),
                     offset + (t2 if t2 is not None else fault_len),
                     drop=prob)

    resilience = ResilienceConfig(
        call_timeout=args.timeout,
        retry=(RetryPolicy(max_attempts=args.retries)
               if args.retries > 1 else None),
        admission=(AdmissionConfig(capacity=args.admission,
                                   policy=args.shed_policy)
                   if args.admission else None),
    )
    exp = HaloExperiment(
        load_fraction=args.load, players=args.players,
        partitioning=args.actop, thread_allocation=args.actop,
        num_servers=args.servers, seed=args.seed,
        resilience=resilience, faults=plan, label="faults",
    )
    rt = exp.runtime
    exp.workload.start()
    exp.cluster.start()
    rt.run(until=args.warmup)

    def measure(until: float) -> dict:
        rt.reset_latency_stats()
        local0, remote0 = rt.msgs_local, rt.msgs_remote
        timed0, retried0 = rt.requests_timed_out, rt.request_retries
        shed0, failed0 = rt.requests_shed, rt.failovers
        rt.run(until=until)
        lat = rt.client_latency
        d_remote = rt.msgs_remote - remote0
        total = (rt.msgs_local - local0) + d_remote
        ts = exp.time_scale
        return {
            "requests": lat.count,
            "median_ms": 1e3 * (lat.median if lat.count else 0.0) / ts,
            "p99_ms": 1e3 * (lat.p99 if lat.count else 0.0) / ts,
            "remote_fraction": d_remote / total if total else 0.0,
            "timed_out": rt.requests_timed_out - timed0,
            "retries": rt.request_retries - retried0,
            "shed": rt.requests_shed - shed0,
            "failovers": rt.failovers - failed0,
        }

    pre = measure(offset)
    during = measure(offset + fault_len)
    post = measure(offset + fault_len + args.duration)

    # Recovery criterion: the remote-message fraction — the cluster's
    # locality fingerprint — must land back within 10% of its pre-fault
    # value (absolute floor 0.02 for near-zero baselines).
    pre_rf, post_rf = pre["remote_fraction"], post["remote_fraction"]
    recovered = abs(post_rf - pre_rf) <= max(0.10 * pre_rf, 0.02)

    injector = exp.injector
    summary = {
        "schema": 1,
        "workload": "halo",
        "seed": args.seed,
        "players": args.players,
        "servers": args.servers,
        "load": args.load,
        "actop": args.actop,
        "plan": {
            "actions": len(plan),
            "kills": [[s, t] for s, t in kills],
            "recovers": [[s, t] for s, t in recovers],
            "drops": [[p, t1, t2] for p, t1, t2 in drops],
        },
        "resilience": {
            "call_timeout": args.timeout,
            "max_attempts": args.retries,
            "admission": args.admission,
            "shed_policy": args.shed_policy,
        },
        "windows": {"pre": pre, "fault": during, "post": post},
        "faults_started": injector.faults_started if injector else 0,
        "faults_ended": injector.faults_ended if injector else 0,
        "inflight_at_end": rt.inflight_requests,
        "remote_fraction_drift": abs(post_rf - pre_rf),
        "recovered": recovered,
    }

    out = sys.stderr if args.json_path == "-" else sys.stdout
    rows = [
        [name, w["requests"], w["median_ms"], w["p99_ms"],
         100 * w["remote_fraction"], w["timed_out"], w["retries"],
         w["shed"], w["failovers"]]
        for name, w in (("pre-fault", pre), ("fault", during),
                        ("post-recovery", post))
    ]
    print(render_table(
        ["window", "requests", "median ms", "p99 ms", "remote %",
         "timeouts", "retries", "shed", "failovers"],
        rows,
        title=f"faults — {len(plan)} planned actions, {args.servers} "
              f"servers, load {args.load:.2f}",
    ), file=out)
    verdict = "recovered" if recovered else "NOT recovered"
    print(f"\nremote fraction: pre {pre_rf:.3f} -> post {post_rf:.3f} "
          f"({verdict}; tolerance 10%), {rt.inflight_requests} requests "
          f"still in flight", file=out)

    if args.json_path == "-":
        print(json.dumps(summary, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"summary JSON written to {args.json_path}", file=out)

    if pre["requests"] == 0 or post["requests"] == 0:
        print("faults failed: a measurement window completed no requests",
              file=sys.stderr)
        return 1
    if not recovered:
        print(f"faults failed: remote fraction did not re-converge "
              f"(pre {pre_rf:.3f}, post {post_rf:.3f})", file=sys.stderr)
        return 1
    return 0


def _run_autoscale(args: argparse.Namespace) -> int:
    import json

    exit_code = _require_sim_backend(args, "autoscale")
    if exit_code is not None:
        return exit_code

    from .actor.runtime import ClusterConfig
    from .autoscale import AutoscaleConfig
    from .cluster import build_cluster
    from .workloads.stageflow import StageflowConfig, StageflowWorkload

    if args.fixed:
        autoscale = None
    else:
        autoscale = AutoscaleConfig(
            period=args.period, low=args.low, high=args.high,
            min_silos=args.min_silos, max_silos=args.servers,
            initial_silos=args.initial, cooldown=args.cooldown,
            warmup=min(args.warmup, 2.0),
        )
    cluster = build_cluster(
        ClusterConfig(num_servers=args.servers, processors=args.processors,
                      seed=args.seed),
        autoscale=autoscale,
    )
    rt = cluster.runtime
    workload = StageflowWorkload(
        rt,
        StageflowConfig(policy=args.policy, base_rate=args.rate,
                        curve=args.curve, flash_at=args.flash_at,
                        flash_duration=args.flash_duration,
                        flash_multiplier=args.flash_multiplier,
                        diurnal_period=args.diurnal_period),
        autoscale=cluster.autoscale,
    )
    # start() order matters: the controller parks the surplus silos
    # before the pools deploy their replicas over the live set.
    cluster.start()
    workload.start()

    # Timeline.  flash: steady | surge+recovery | post; other curves:
    # three equal windows.
    if args.curve == "flash":
        surge_end = args.flash_at + args.flash_duration + args.settle
        bounds = [(f"steady [{args.warmup:g}, {args.flash_at:g})",
                   args.flash_at),
                  (f"surge+recovery [{args.flash_at:g}, {surge_end:g})",
                   surge_end),
                  (f"post [{surge_end:g}, {surge_end + args.duration:g})",
                   surge_end + args.duration)]
    else:
        bounds = [(f"window {i + 1}", args.warmup + (i + 1) * args.duration)
                  for i in range(3)]

    rt.run(until=args.warmup)
    busy_snapshot = {"busy": rt.cpu_busy_snapshot(), "t": rt.sim.now}

    def measure(until: float) -> dict:
        rt.reset_latency_stats()
        completed0, failed0 = workload.completed, workload.failed
        rt.run(until=until)
        live = [(silo, before) for silo, before
                in zip(rt.silos, busy_snapshot["busy"]) if not silo.dead]
        util = (sum(s.server.cpu.utilization(b, busy_snapshot["t"])
                    for s, b in live) / len(live)) if live else 0.0
        busy_snapshot["busy"] = rt.cpu_busy_snapshot()
        busy_snapshot["t"] = rt.sim.now
        lat = rt.client_latency
        return {
            "requests": lat.count,
            "failed": workload.failed - failed0,
            "completed": workload.completed - completed0,
            "median_ms": 1e3 * (lat.median if lat.count else 0.0),
            "p99_ms": 1e3 * (lat.p99 if lat.count else 0.0),
            "mean_utilization": util,
            "active_silos": rt.active_servers,
        }

    windows = [(name, measure(until)) for name, until in bounds]
    workload.stop()
    until = bounds[-1][1]

    ctrl = cluster.autoscale
    if ctrl is not None:
        ctrl.stop()
        silo_seconds = ctrl.silo_seconds
        # Re-convergence: over the final quarter of the run the
        # controller's measured utilization must sit back inside the
        # band (5% tolerance) — or below it with the fleet already at
        # the scale-in floor, which is the band's best reachable point.
        tail = [w for w in ctrl.windows if w[0] >= 0.75 * until]
        tail_util = (sum(u for _, u, _ in tail) / len(tail)) if tail else 0.0
        reconverged = bool(tail) and tail_util <= args.high + 0.05 and (
            tail_util >= args.low - 0.05
            or ctrl.active <= args.min_silos)
    else:
        silo_seconds = args.servers * until
        tail_util = windows[-1][1]["mean_utilization"]
        reconverged = None

    summary = {
        "schema": 1,
        "workload": "stageflow",
        "mode": "fixed" if args.fixed else "autoscale",
        "seed": args.seed,
        "servers": args.servers,
        "processors": args.processors,
        "policy": args.policy,
        "curve": args.curve,
        "base_rate": args.rate,
        "band": [args.low, args.high],
        "windows": {name: w for name, w in windows},
        "issued": workload.issued,
        "completed": workload.completed,
        "failed": workload.failed,
        "silo_seconds": round(silo_seconds, 3),
        "tail_utilization": round(tail_util, 4),
        "reconverged": reconverged,
        "controller": ctrl.summary() if ctrl is not None else None,
    }

    out = sys.stderr if args.json_path == "-" else sys.stdout
    mode = "fixed baseline" if args.fixed else "autoscale"
    print(render_table(
        ["window", "requests", "failed", "median ms", "p99 ms",
         "mean CPU %", "silos"],
        [[name, w["requests"], w["failed"], w["median_ms"], w["p99_ms"],
          100 * w["mean_utilization"], w["active_silos"]]
         for name, w in windows],
        title=f"stageflow {args.curve} — {mode}, {args.policy} policy, "
              f"{args.rate:g} req/s base, fleet {args.servers}",
    ), file=out)
    if ctrl is not None:
        for t, util, active, action in ctrl.decisions:
            print(f"  t={t:6.2f}s  util={util:.2f}  -> {action:<10} "
                  f"({active} active)", file=out)
        verdict = "re-converged" if reconverged else "did NOT re-converge"
        print(f"\n{ctrl.plans_committed}/{ctrl.plans_begun} plans committed, "
              f"{ctrl.grows} grows / {ctrl.shrinks} shrinks; "
              f"tail utilization {tail_util:.2f} {verdict} into "
              f"[{args.low:.2f}, {args.high:.2f}]; "
              f"{silo_seconds:.1f} silo-seconds", file=out)
    else:
        print(f"\nfixed fleet: {silo_seconds:.1f} silo-seconds", file=out)

    if args.json_path == "-":
        print(json.dumps(summary, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"summary JSON written to {args.json_path}", file=out)

    if any(w["requests"] == 0 for _, w in windows):
        print("autoscale failed: a measurement window completed no requests",
              file=sys.stderr)
        return 1
    if reconverged is False:
        print(f"autoscale failed: tail utilization {tail_util:.2f} outside "
              f"[{args.low:.2f}, {args.high:.2f}]", file=sys.stderr)
        return 1
    return 0


def _sanitizer_slice(requests: int, seed: int) -> dict:
    """Drive a Halo slice with the sanitizer armed + the order probe."""
    import hashlib

    from .analysis.sanitizer import Sanitizer, detect_order_dependence

    # Arm BEFORE building the experiment: RNG substreams are wrapped at
    # creation time and the workload caches its stream handles.
    san = Sanitizer()
    with san.armed():
        exp = HaloExperiment(players=200, num_servers=3, seed=seed)
        san.wire(exp.cluster)
        rt = exp.runtime
        exp.workload.start()
        exp.cluster.start()
        horizon = 0.0
        while rt.requests_completed < requests and horizon < 120.0:
            horizon += 1.0
            rt.run(until=horizon)
    report = san.report()
    report["requests_completed"] = rt.requests_completed
    report["horizon_s"] = horizon

    def digest() -> str:
        probe_exp = HaloExperiment(players=80, num_servers=3, seed=seed)
        probe_exp.workload.start()
        probe_exp.cluster.start()
        sim = probe_exp.runtime.sim
        sha = hashlib.sha256()
        while sim.now < 2.0 and sim.step():
            sha.update(repr(sim.now).encode())
        return sha.hexdigest()

    probe = detect_order_dependence(digest)
    report["order_probe"] = probe.to_dict()
    report["ok"] = report["ok"] and not probe.order_dependent
    return report


def _run_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import DEFAULT_ROOTS, all_rules, lint_paths
    from .analysis.flow import all_flow_rules
    from .analysis.par import all_par_rules
    from .analysis.xbackend import all_xb_rules

    if args.list_rules:
        families = [
            ("file", all_rules()),
            ("flow", all_flow_rules()),
            ("xbackend", all_xb_rules()),
            ("par", all_par_rules()),
        ]
        inventory = [
            {"family": family, "name": r.name,
             "severity": str(r.severity), "description": r.description}
            for family, rules in families for r in rules
        ]
        out = sys.stderr if args.json_path == "-" else sys.stdout
        rows = [[r["name"], r["severity"],
                 r["description"] if r["family"] == "file"
                 else f"[{r['family']}] {r['description']}"]
                for r in inventory]
        counts = ", ".join(f"{sum(1 for r in inventory if r['family'] == f)} "
                           f"{f}" for f, _ in families[1:])
        print(render_table(
            ["rule", "severity", "description"], rows,
            title=f"{len(rows)} registered lint rules ({counts})",
        ), file=out)
        doc = {"schema": 1, "rules": inventory}
        if args.json_path == "-":
            print(json.dumps(doc, indent=2))
        elif args.json_path:
            with open(args.json_path, "w") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            print(f"rule inventory written to {args.json_path}", file=out)
        return 0

    if args.waivers:
        return _run_waiver_audit(args)

    flow = args.flow or args.flow_graph is not None \
        or args.graph_check is not None
    xbackend = args.xbackend or args.xb_check is not None
    par = args.par or args.par_graph is not None \
        or args.par_check is not None
    cache_dir = ".repro-lint-cache" if args.cache else None
    report = lint_paths(args.paths or DEFAULT_ROOTS, rules=args.rules,
                        flow=flow, xbackend=xbackend, par=par,
                        cache_dir=cache_dir)
    doc: dict = {"schema": 1, "lint": report.to_dict()}
    ok = report.ok

    graph = report.flow_graph
    if graph is not None:
        doc["flow_graph"] = graph.to_dict()
    if report.par_report is not None:
        doc["par_lookahead"] = report.par_report

    san_report = None
    if args.sanitize:
        san_report = _sanitizer_slice(args.requests, args.seed)
        doc["sanitizer"] = san_report
        ok = ok and san_report["ok"]

    check_report = None
    if args.graph_check is not None and graph is not None:
        from .analysis.flow import crosscheck_halo

        check_report = crosscheck_halo(graph, requests=args.requests,
                                       seed=args.seed)
        doc["graph_check"] = check_report
        ok = ok and check_report["ok"]

    xb_report = None
    if args.xb_check is not None:
        from .analysis.xbackend import crosscheck_parity

        xb_report = crosscheck_parity(args.paths or DEFAULT_ROOTS)
        doc["xb_check"] = xb_report
        ok = ok and xb_report["ok"]

    par_check_report = None
    if args.par_check is not None:
        from .analysis.par import crosscheck_windows

        par_check_report = crosscheck_windows(
            args.paths or DEFAULT_ROOTS, requests=args.requests,
            seed=args.seed)
        doc["par_check"] = par_check_report
        ok = ok and par_check_report["ok"]
    doc["ok"] = ok

    out = sys.stderr if args.json_path == "-" else sys.stdout
    rows = [[f.rule, f"{f.path}:{f.line}", f.message]
            for f in report.active]
    rows += [[f"{f.rule} (waived)", f"{f.path}:{f.line}",
              f.justification or ""] for f in report.waived]
    cache_note = (f", cache {report.cache_hits} hit/"
                  f"{report.cache_misses} miss" if args.cache else "")
    if args.cache and (flow or xbackend or par):
        cache_note += (f", project {report.project_cache_hits} hit/"
                       f"{report.project_cache_misses} miss")
    print(render_table(
        ["rule", "location", "detail"],
        rows or [["-", "-", "no findings"]],
        title=f"repro lint — {report.files_checked} files, "
              f"{len(report.active)} active, {len(report.waived)} waived"
              f"{cache_note}",
    ), file=out)
    if graph is not None:
        edges = graph.type_edge_weights()
        print(f"\nflow: {len(graph.actor_edges())} actor-edge site(s), "
              f"{len(edges)} type edge(s), "
              f"{len(graph.client_sites())} client entry point(s)",
              file=out)
        if args.flow_graph is not None:
            with open(args.flow_graph, "w") as fh:
                json.dump(graph.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"static interaction graph written to {args.flow_graph}",
                  file=out)
    if check_report is not None:
        from .analysis.flow import format_crosscheck

        for line in format_crosscheck(check_report):
            print(line, file=out)
        with open(args.graph_check, "w") as fh:
            json.dump(check_report, fh, indent=2)
            fh.write("\n")
        print(f"graph-check diff written to {args.graph_check}", file=out)
    if xb_report is not None:
        from .analysis.xbackend import format_xb_crosscheck

        print(format_xb_crosscheck(xb_report), file=out)
        with open(args.xb_check, "w") as fh:
            json.dump(xb_report, fh, indent=2)
            fh.write("\n")
        print(f"xbackend crosscheck written to {args.xb_check}", file=out)
    if report.par_report is not None:
        la = report.par_report
        print(f"\npar: {la['resolved_models']} network model(s) resolved "
              f"({la['unresolved_models']} unresolved), "
              f"{len(la['edges'])} type edge(s), "
              f"window bound {la['window']:.6g}s", file=out)
        if args.par_graph is not None:
            with open(args.par_graph, "w") as fh:
                json.dump(la, fh, indent=2)
                fh.write("\n")
            print(f"lookahead report written to {args.par_graph}", file=out)
    if par_check_report is not None:
        from .analysis.par import format_par_crosscheck

        print(format_par_crosscheck(par_check_report), file=out)
        with open(args.par_check, "w") as fh:
            json.dump(par_check_report, fh, indent=2)
            fh.write("\n")
        print(f"par window crosscheck written to {args.par_check}", file=out)
    if san_report is not None:
        print(f"\nsanitizer: {san_report['requests_completed']} requests, "
              f"{san_report['events_seen']} events, "
              f"{san_report['accesses']} accesses, "
              f"{len(san_report['conflicts'])} conflicts, "
              f"{len(san_report['rng_hazards'])} rng hazards; order probe "
              f"{'DIVERGED' if san_report['order_probe']['order_dependent'] else 'clean'}",
              file=out)
        for conflict in san_report["conflicts"]:
            print(f"  conflict: {conflict['owner']}.{conflict['field']} "
                  f"at t={conflict['time']:.6f} — {conflict['note'] or conflict['accesses']}",
                  file=out)

    if args.json_path == "-":
        print(json.dumps(doc, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"JSON report written to {args.json_path}", file=out)

    if not ok:
        print("lint failed: unwaived findings, sanitizer conflicts, or "
              "cross-check divergence (see report above)", file=sys.stderr)
        return 1
    return 0


def _run_waiver_audit(args: argparse.Namespace) -> int:
    import json

    from .analysis import DEFAULT_ROOTS
    from .analysis.linter import waiver_audit

    audit = waiver_audit(args.paths or DEFAULT_ROOTS)
    doc = {"schema": 1, "waiver_audit": audit}
    out = sys.stderr if args.json_path == "-" else sys.stdout
    rows = [[",".join(w["rules"]), f"{w['path']}:{w['line']}",
             w["justification"] or "(MISSING JUSTIFICATION)"]
            for w in audit["waivers"]]
    print(render_table(
        ["rules", "location", "justification"],
        rows or [["-", "-", "no waivers in tree"]],
        title=f"waiver audit — {audit['count']} active waiver(s), "
              f"{audit['unjustified']} unjustified",
    ), file=out)
    if args.json_path == "-":
        print(json.dumps(doc, indent=2))
    elif args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"JSON report written to {args.json_path}", file=out)
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    from .bench import perf

    if args.backend == "asyncio":
        return _run_perf_asyncio(args)
    if args.scale_point or args.scaling:
        return _run_perf_scaling(args)
    try:
        doc = perf.run_suite(
            smoke=args.smoke,
            repeat=args.repeat,
            only=args.only,
            profile_dir=args.profile_dir,
        )
    except Exception as exc:  # failed run -> non-zero exit, not a traceback
        print(f"perf suite failed: {exc}", file=sys.stderr)
        return 1
    if args.json_path == "-":
        # Keep stdout pure JSON so the output can be piped; the human
        # table still reaches the terminal via stderr.
        print(perf.render_results(doc), file=sys.stderr)
        if args.profile_dir:
            print(f"cProfile stats in {args.profile_dir}/<benchmark>.pstats "
                  f"(inspect with python -m pstats)", file=sys.stderr)
        print(perf.main_json(doc))
        return 0
    print(perf.render_results(doc))
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(perf.main_json(doc) + "\n")
        print(f"\nJSON written to {args.json_path}")
    if args.profile_dir:
        print(f"cProfile stats in {args.profile_dir}/<benchmark>.pstats "
              f"(inspect with python -m pstats)")
    return 0


def _run_perf_asyncio(args: argparse.Namespace) -> int:
    import json

    from .backend.bench import ping_latency

    if args.scaling or args.scale_point:
        print("repro perf: --scaling is simulator-only; the asyncio "
              "benchmark is the 2-silo ping-latency run", file=sys.stderr)
        return 2
    try:
        doc = ping_latency(pings=args.pings, transport=args.transport)
    except Exception as exc:  # failed run -> non-zero exit, not a traceback
        print(f"asyncio ping bench failed: {exc}", file=sys.stderr)
        return 1
    table = (f"asyncio ping ({doc['transport']}, {doc['silos']} silos): "
             f"{doc['completed']}/{doc['pings']} completed, "
             f"mean {doc['mean_ms']:.3f} ms, p50 {doc['p50_ms']:.3f} ms, "
             f"p99 {doc['p99_ms']:.3f} ms, "
             f"{doc['throughput_rps']:,} req/s")
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.json_path == "-":
        print(table, file=sys.stderr)
        print(payload)
        return 0
    print(table)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(payload + "\n")
        print(f"\nJSON written to {args.json_path}")
    return 0


def _run_perf_scaling(args: argparse.Namespace) -> int:
    import json

    from .bench import scale

    try:
        if args.scale_point:
            point = scale.run_scale_point(args.scale_point,
                                          horizon=args.horizon)
            doc = {
                "schema": 2,
                "kind": "scale_point",
                "gate_rss_bytes_per_actor": scale.RSS_PER_ACTOR_GATE_BYTES,
                "point": point,
            }
            violations = scale.gate_violations(point)
        else:
            doc = scale.run_scaling_curve(points=args.points,
                                          horizon=args.horizon,
                                          isolate=args.isolate)
            violations = [v for p in doc["points"] for v in p["violations"]]
    except Exception as exc:  # failed run -> non-zero exit, not a traceback
        print(f"scaling bench failed: {exc}", file=sys.stderr)
        return 1
    if args.scaling:
        table = scale.render_curve(doc)
    else:
        p = doc["point"]
        table = (f"{p['actors']:,} actors: {p['wall_seconds']:.1f}s wall "
                 f"({p['bootstrap_seconds']:.1f}s bootstrap), "
                 f"{p['events']:,} events, "
                 f"{p['peak_rss_bytes'] / 2**20:,.0f} MiB peak RSS "
                 f"({p['rss_bytes_per_actor']:,.0f} B/actor)")
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.json_path == "-":
        print(table, file=sys.stderr)
        print(payload)
    else:
        print(table)
        if args.json_path:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"\nJSON written to {args.json_path}")
    for violation in violations:
        print(f"GATE: {violation}", file=sys.stderr)
    if args.gate and violations:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "halo":
        return _run_halo(args)
    if args.command == "heartbeat":
        return _run_heartbeat(args)
    if args.command == "partition":
        return _run_partition(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "autoscale":
        return _run_autoscale(args)
    if args.command == "lint":
        return _run_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
