"""Interprocedural message-flow analysis over the actor tree.

Layers, bottom up:

* :mod:`.index` — project-wide symbol index (modules, classes, actor
  interfaces, registrations, mutations, the blocking-call graph).
* :mod:`.cfg` — intraprocedural def-use: ``ActorRef`` provenance as an
  abstract interpretation whose values are sets of actor-type strings.
* :mod:`.interaction` — the static actor interaction graph, built by an
  interprocedural fixpoint (refs flowing through fields and call
  arguments), exportable in the ``comm_graph`` edge format.
* :mod:`.rules` — the FLOW rule family on top of the graph.
* :mod:`.crosscheck` — static ⊇ dynamic validation against a seeded
  runtime slice.

Entry point for the linter: :func:`analyze_files`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..findings import Finding, Severity
from .crosscheck import crosscheck_halo, dynamic_type_edges, format_crosscheck
from .index import ProjectIndex, build_index
from .interaction import InteractionGraph, build_graph
from .rules import FlowRule, all_flow_rules, run_flow_rules

__all__ = [
    "ProjectIndex",
    "InteractionGraph",
    "FlowRule",
    "all_flow_rules",
    "analyze_files",
    "build_graph",
    "build_index",
    "crosscheck_halo",
    "dynamic_type_edges",
    "format_crosscheck",
    "run_flow_rules",
]


def analyze_files(files: Sequence[Tuple[str, str]],
                  ) -> Tuple[ProjectIndex, InteractionGraph, List[Finding]]:
    """Index ``(relpath, source)`` pairs, build the interaction graph,
    and run every FLOW rule.  Parse failures become findings (the
    per-file pass reports them too; the linter deduplicates)."""
    index = build_index(files)
    graph = build_graph(index)
    findings = run_flow_rules(index, graph)
    for path, line, msg in index.parse_failures:
        findings.append(Finding(
            rule="PARSE-ERROR", severity=Severity.ERROR,
            path=path, line=line, message=f"file does not parse: {msg}"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return index, graph, findings
