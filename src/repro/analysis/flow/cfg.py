"""Light intraprocedural def-use layer: ActorRef provenance.

The question the interaction graph needs answered, per method, is:
*when this code constructs* ``Call(target, "m", ...)``, *which actor
types can* ``target`` *be?*  We answer it with a small abstract
interpreter over one function body.  The abstract value of an
expression is the set of actor-type strings it may refer to (a ref, or
any container of refs, collapsed); everything else is the empty set.

Sources of refs::

    ActorRef("player", key)          -> {"player"}
    runtime.ref(self.PLAYER, key)    -> {"player"}   (constants resolved)
    self.self_ref()                  -> the enclosing class's types

Propagation is monotone (assignments union into the environment), so a
fixed number of passes over the statement list converges regardless of
loop structure; over-approximation is exactly what we want for a
static ⊇ dynamic graph.  Comprehension targets are bound from their
iterables, so ``All([Call(p, "update") for p in self.members])``
resolves ``p`` through the tracked type of ``self.members``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..rules import _attr_chain
from .index import ClassInfo, ModuleInfo, ProjectIndex

__all__ = ["CallSite", "EvalResult", "MethodEval"]

TypeSet = FrozenSet[str]
EMPTY: TypeSet = frozenset()

#: Builtins / methods through which a ref (or a container of refs)
#: passes unchanged for our purposes.
_PASSTHROUGH_FUNCS = frozenset({
    "list", "tuple", "set", "frozenset", "sorted", "reversed",
    "copy", "deepcopy", "choice", "sample", "next", "enumerate",
    "zip", "map", "filter", "min", "max",
})
_PASSTHROUGH_METHODS = frozenset({
    "values", "items", "get", "pop", "popleft", "popitem", "copy",
})

#: ``self.<field>.<method>(x)`` calls that store ``x`` in the container.
_CONTAINER_ADDERS = frozenset({
    "append", "add", "insert", "extend", "update", "setdefault",
    "appendleft",
})


@dataclass(frozen=True)
class CallSite:
    """One message-send site: ``Call``/``Tell`` construction or a
    ``client_request`` invocation."""

    kind: str                    # "call" | "tell" | "client"
    path: str
    line: int
    target_types: TypeSet        # resolved actor types ('' never appears)
    method: Optional[str]        # None when not a string literal/constant
    n_args: int                  # positional args after the method name
    arg_types: Tuple[TypeSet, ...]
    idempotent_kwarg: Optional[bool]   # client sites only
    caller_class: Optional[str]  # simple class name, if inside a class
    caller_method: Optional[str]


@dataclass
class EvalResult:
    sites: List[CallSite] = field(default_factory=list)
    # (field_name, types) for self.<field> assignments that carry refs
    field_flows: List[Tuple[str, TypeSet]] = field(default_factory=list)


class MethodEval:
    """Abstract interpretation of one function/method body."""

    def __init__(self, index: ProjectIndex, mod: ModuleInfo,
                 cls: Optional[ClassInfo], fn: ast.AST,
                 self_types: TypeSet,
                 param_types: Optional[Dict[str, TypeSet]] = None,
                 field_types: Optional[Dict[str, TypeSet]] = None):
        self.index = index
        self.mod = mod
        self.cls = cls
        self.fn = fn
        self.self_types = self_types
        self.env: Dict[str, TypeSet] = {}
        for fname, types in (field_types or {}).items():
            self.env[f"self.{fname}"] = types
        for pname, types in (param_types or {}).items():
            self.env[pname] = types
        self.collecting = False
        self.result = EvalResult()

    def run(self) -> EvalResult:
        body = getattr(self.fn, "body", [])
        # Two monotone env-building passes (stabilises flows through
        # loops and forward uses), then one collection pass.
        for _ in range(2):
            self._exec_block(body)
        self.collecting = True
        self._exec_block(body)
        return self.result

    # -- statements ----------------------------------------------------

    def _exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self._eval(stmt.iter))
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs close over the enclosing scope; treat the body
            # as inline so refs used by callbacks are still seen.
            self._exec_block(stmt.body)
        # imports / pass / global / etc.: no ref flow tracked

    def _bind(self, target: ast.expr, value: TypeSet) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, EMPTY) | value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)
        elif isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain and chain.startswith("self.") and chain.count(".") == 1:
                fname = chain.split(".")[1]
                key = f"self.{fname}"
                self.env[key] = self.env.get(key, EMPTY) | value
                if value and not self.collecting:
                    self.result.field_flows.append((fname, value))
        elif isinstance(target, ast.Subscript):
            self._eval(target.slice)
            self._bind(target.value, value)

    # -- expressions ---------------------------------------------------

    def _eval(self, expr: ast.expr) -> TypeSet:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, EMPTY)
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain and chain.startswith("self.") and chain.count(".") == 1:
                return self.env.get(chain, EMPTY)
            if not isinstance(expr.value, ast.Name):
                self._eval(expr.value)
            return EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in expr.elts:
                out |= self._eval(elt)
            return out
        if isinstance(expr, ast.Dict):
            out = EMPTY
            for key in expr.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in expr.values:
                out |= self._eval(value)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(expr.generators, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._eval_comp(expr.generators, [expr.key, expr.value])
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            return self._eval(expr.value)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.BoolOp):
            out = EMPTY
            for value in expr.values:
                out |= self._eval(value)
            return out
        if isinstance(expr, ast.UnaryOp):
            self._eval(expr.operand)
            return EMPTY
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comp in expr.comparators:
                self._eval(comp)
            return EMPTY
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if expr.value is not None:
                self._eval(expr.value)
            return EMPTY
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return EMPTY
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value)
            self._bind(expr.target, value)
            return value
        return EMPTY

    def _eval_comp(self, generators: List[ast.comprehension],
                   results: List[ast.expr]) -> TypeSet:
        saved = dict(self.env)
        try:
            for gen in generators:
                value = self._eval(gen.iter)
                # Comprehension targets live in a fresh scope: overwrite,
                # don't union, or a reused loop-variable name would leak
                # the outer binding's types into the element type.
                for node in ast.walk(gen.target):
                    if isinstance(node, ast.Name):
                        self.env.pop(node.id, None)
                self._bind(gen.target, value)
                for cond in gen.ifs:
                    self._eval(cond)
            out = EMPTY
            for res in results:
                out |= self._eval(res)
            return out
        finally:
            self.env = saved

    def _eval_call(self, call: ast.Call) -> TypeSet:
        chain = _attr_chain(call.func)
        last = chain.split(".")[-1] if chain else None
        resolved = self.mod.imports.resolve(call.func) if chain else None
        resolved_last = resolved.split(".")[-1] if resolved else last

        if resolved_last in ("Call", "Tell"):
            self._register_message(call, "call" if resolved_last == "Call"
                                   else "tell")
            return EMPTY
        if last == "client_request" and call.args:
            self._register_client(call)
            return EMPTY
        if last == "self_ref":
            self._eval_args(call)
            return self.self_types
        if last == "ref" and call.args:
            self._eval_args(call)
            type_name = self.index.const_str(call.args[0], self.mod, self.cls)
            return frozenset({type_name}) if type_name else EMPTY
        if resolved_last == "ActorRef" and call.args:
            self._eval_args(call)
            type_name = self.index.const_str(call.args[0], self.mod, self.cls)
            return frozenset({type_name}) if type_name else EMPTY
        if last in _PASSTHROUGH_FUNCS:
            out = EMPTY
            for arg in call.args:
                out |= self._eval(arg)
            for kw in call.keywords:
                self._eval(kw.value)
            return out
        if last in _PASSTHROUGH_METHODS and isinstance(call.func,
                                                       ast.Attribute):
            self._eval_args(call)
            return self._eval(call.func.value)
        if last == "All":
            # All([...]) wraps Calls; evaluating args registers them.
            self._eval_args(call)
            return EMPTY
        if (chain is not None and chain.startswith("self.")
                and chain.count(".") == 2 and last in _CONTAINER_ADDERS):
            # self.<field>.append(ref) etc.: refs flow into the field.
            fname = chain.split(".")[1]
            added = EMPTY
            for arg in call.args:
                added |= self._eval(arg)
            for kw in call.keywords:
                added |= self._eval(kw.value)
            if added:
                key = f"self.{fname}"
                self.env[key] = self.env.get(key, EMPTY) | added
                if not self.collecting:
                    self.result.field_flows.append((fname, added))
            return EMPTY
        self._eval_args(call)
        if not isinstance(call.func, (ast.Name, ast.Attribute)):
            self._eval(call.func)
        return EMPTY

    def _eval_args(self, call: ast.Call) -> None:
        for arg in call.args:
            self._eval(arg)
        for kw in call.keywords:
            self._eval(kw.value)

    def _register_message(self, call: ast.Call, kind: str) -> None:
        if not call.args:
            return
        target_types = self._eval(call.args[0])
        method = None
        if len(call.args) >= 2:
            method = self.index.const_str(call.args[1], self.mod, self.cls)
        rest = call.args[2:]
        arg_types = tuple(self._eval(a) for a in rest
                          if not isinstance(a, ast.Starred))
        n_args = len([a for a in rest if not isinstance(a, ast.Starred)])
        has_star = any(isinstance(a, ast.Starred) for a in rest)
        for a in rest:
            if isinstance(a, ast.Starred):
                self._eval(a.value)
        for kw in call.keywords:
            self._eval(kw.value)
        if self.collecting:
            self.result.sites.append(CallSite(
                kind=kind, path=self.mod.path, line=call.lineno,
                target_types=target_types, method=method,
                n_args=-1 if has_star else n_args, arg_types=arg_types,
                idempotent_kwarg=None,
                caller_class=self.cls.name if self.cls else None,
                caller_method=getattr(self.fn, "name", None),
            ))

    def _register_client(self, call: ast.Call) -> None:
        target_types = self._eval(call.args[0])
        method = None
        if len(call.args) >= 2:
            method = self.index.const_str(call.args[1], self.mod, self.cls)
        rest = call.args[2:]
        arg_types = tuple(self._eval(a) for a in rest
                          if not isinstance(a, ast.Starred))
        has_star = any(isinstance(a, ast.Starred) for a in rest)
        for a in rest:
            if isinstance(a, ast.Starred):
                self._eval(a.value)
        idempotent: Optional[bool] = None
        for kw in call.keywords:
            self._eval(kw.value)
            if kw.arg == "idempotent" and isinstance(kw.value, ast.Constant):
                idempotent = bool(kw.value.value)
        if self.collecting:
            self.result.sites.append(CallSite(
                kind="client", path=self.mod.path, line=call.lineno,
                target_types=target_types, method=method,
                n_args=-1 if has_star else len(arg_types),
                arg_types=arg_types, idempotent_kwarg=idempotent,
                caller_class=self.cls.name if self.cls else None,
                caller_method=getattr(self.fn, "name", None),
            ))
