"""Project-wide symbol index for the message-flow analysis.

The per-file rules in :mod:`repro.analysis.rules` are lexical: they see
one module at a time.  The flow pass needs the whole tree at once —
which classes are actors (transitively, through bases defined in other
files), what methods they expose and with what arity, which string an
``ActorRef("player", ...)`` resolves to which class (via
``runtime.register_actor`` sites and ``TYPE = "player"`` class
constants), and where actor state is mutated.  :class:`ProjectIndex`
extracts all of that in one deterministic sweep so the interaction
graph (:mod:`.interaction`) and the FLOW rules (:mod:`.rules`) can be
purely computational on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rules import (  # reuse the per-file helpers: one resolution behaviour
    _attr_chain,
    _BLOCKING_CALLS,
    _BLOCKING_PREFIXES,
    _ImportTracker,
    _is_actor_class,
)

__all__ = [
    "ACTOR_BASE_METHODS",
    "ClassInfo",
    "FieldWrite",
    "MethodInfo",
    "ModuleInfo",
    "Mutation",
    "ProjectIndex",
    "build_index",
]

#: Methods every :class:`repro.actor.Actor` provides.  Used when a base
#: class named ``Actor``/``*Actor`` cannot be resolved inside the index
#: (e.g. fixture stand-ins that import it from an unindexed module).
ACTOR_BASE_METHODS = frozenset({
    "on_activate", "on_deactivate", "self_ref",
    "capture_state", "restore_state",
})

#: Method names on ``self.<field>`` whose call mutates the container in a
#: non-idempotent way when replayed (``clear``/``copy`` are excluded:
#: replaying them converges).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "appendleft", "popleft",
})


@dataclass(frozen=True)
class Mutation:
    """One non-idempotent state mutation inside an actor method."""

    field_name: str
    line: int
    desc: str


@dataclass(frozen=True)
class FieldWrite:
    """One ``self.<field> = value`` assignment (any value shape)."""

    field_name: str
    line: int
    method: str
    value: ast.expr


@dataclass
class MethodInfo:
    """Signature + body facts for one method."""

    name: str
    lineno: int
    min_pos: int                 # required positional args (excl. self)
    max_pos: Optional[int]       # None => *args
    is_generator: bool
    idempotent: bool             # @idempotent / IDEMPOTENT = {...}
    mutations: List[Mutation] = field(default_factory=list)
    field_writes: List[FieldWrite] = field(default_factory=list)
    node: Optional[ast.AST] = None


@dataclass
class ClassInfo:
    name: str
    module: str                  # dotted module name ("repro.workloads.halo")
    path: str                    # repo-relative path, for findings
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    constants: Dict[str, str] = field(default_factory=dict)  # STR class attrs
    reentrant: bool = True       # REENTRANT = False flips it
    is_actor: bool = False       # filled transitively by the index
    node: Optional[ast.ClassDef] = None

    @property
    def key(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class FunctionInfo:
    """A module-level function or a method, for the blocking-call graph."""

    qualname: str                # "repro.x.helper" / "repro.x.Cls.meth"
    path: str
    lineno: int
    blocking: Optional[Tuple[int, str]] = None   # (line, resolved call)
    calls: List[Tuple[int, str]] = field(default_factory=list)
    node: Optional[ast.AST] = None


@dataclass
class ModuleInfo:
    path: str                    # repo-relative
    name: str                    # dotted
    source: str
    tree: ast.Module
    imports: _ImportTracker
    constants: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, ast.AST] = field(default_factory=dict)


def _calls_with_context(tree: ast.Module, mod: "ModuleInfo"):
    """Yield ``(class_info, enclosing_fn, call_node)`` for every call,
    tracking the lexically enclosing class and function."""
    out: List[Tuple[Optional[ClassInfo], Optional[ast.AST], ast.Call]] = []

    def walk(node: ast.AST, cls: Optional[ClassInfo],
             fn: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            ncls, nfn = cls, fn
            if isinstance(child, ast.ClassDef):
                ncls, nfn = mod.classes.get(child.name), None
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nfn = child
            if isinstance(child, ast.Call):
                out.append((cls, fn, child))
            walk(child, ncls, nfn)

    walk(tree, None, None)
    return out


def _module_name(relpath: str) -> str:
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _decorator_names(fn: ast.AST) -> List[str]:
    names = []
    for dec in getattr(fn, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = _attr_chain(target)
        if chain:
            names.append(chain.split(".")[-1])
    return names


def _generator_check(fn: ast.FunctionDef) -> bool:
    """True if ``fn`` itself (not a nested def/lambda) yields."""
    class _Finder(ast.NodeVisitor):
        found = False

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is fn:
                self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

    finder = _Finder()
    finder.visit(fn)
    return finder.found


def _expr_mentions_field(expr: ast.expr, field_name: str) -> bool:
    for node in ast.walk(expr):
        if (isinstance(node, ast.Attribute) and node.attr == field_name
                and isinstance(node.value, ast.Name) and node.value.id == "self"):
            return True
    return False


def _collect_mutations(fn: ast.FunctionDef) -> List[Mutation]:
    out: List[Mutation] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.AugAssign):
            target = node.target
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                out.append(Mutation(
                    target.attr, node.lineno,
                    f"augmented assignment to self.{target.attr}"))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _expr_mentions_field(node.value, target.attr)):
                    out.append(Mutation(
                        target.attr, node.lineno,
                        f"self-referential reassignment of self.{target.attr}"))
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain.startswith("self."):
                parts = chain.split(".")
                if len(parts) >= 3 and parts[-1] in _MUTATOR_METHODS:
                    out.append(Mutation(
                        parts[1], node.lineno,
                        f"call to {chain}() (container mutator)"))
    out.sort(key=lambda m: (m.line, m.field_name, m.desc))
    return out


def _collect_field_writes(fn: ast.FunctionDef) -> List[FieldWrite]:
    out: List[FieldWrite] = []
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) \
                else [target]
            for elt in elts:
                if (isinstance(elt, ast.Attribute)
                        and isinstance(elt.value, ast.Name)
                        and elt.value.id == "self"):
                    out.append(FieldWrite(elt.attr, node.lineno, fn.name, value))
    return out


def _method_info(fn: ast.FunctionDef, idempotent_names: frozenset) -> MethodInfo:
    args = fn.args
    pos = args.posonlyargs + args.args
    n = len(pos)
    has_self = n > 0 and pos[0].arg in ("self", "cls")
    n_pos = n - (1 if has_self else 0)
    n_defaults = len(args.defaults)
    return MethodInfo(
        name=fn.name,
        lineno=fn.lineno,
        min_pos=max(0, n_pos - n_defaults),
        max_pos=None if args.vararg is not None else n_pos,
        is_generator=_generator_check(fn),
        idempotent=("idempotent" in _decorator_names(fn)
                    or fn.name in idempotent_names),
        mutations=_collect_mutations(fn),
        field_writes=_collect_field_writes(fn),
        node=fn,
    )


def _class_info(cls: ast.ClassDef, module: str, path: str) -> ClassInfo:
    info = ClassInfo(
        name=cls.name, module=module, path=path, lineno=cls.lineno,
        bases=[b for b in (_attr_chain(base) for base in cls.bases) if b],
        node=cls,
    )
    idempotent_names: set = set()
    for stmt in cls.body:
        value = None
        name = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name, value = stmt.target.id, stmt.value
        if name is None or value is None:
            continue
        if name == "REENTRANT" and isinstance(value, ast.Constant):
            info.reentrant = bool(value.value)
        elif name == "IDEMPOTENT" and isinstance(value, (ast.Set, ast.List,
                                                         ast.Tuple)):
            for elt in value.elts:
                s = _const_str(elt)
                if s is not None:
                    idempotent_names.add(s)
        else:
            s = _const_str(value)
            if s is not None:
                info.constants[name] = s
    frozen = frozenset(idempotent_names)
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef):
            info.methods[stmt.name] = _method_info(stmt, frozen)
    return info


class ProjectIndex:
    """Symbol index over a fixed set of files; everything deterministic."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}           # relpath -> info
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.registrations: Dict[str, List[str]] = {}      # type -> class names
        self.types_of_class: Dict[str, List[str]] = {}     # class name -> types
        self.functions: Dict[str, FunctionInfo] = {}       # qualname -> info
        self.parse_failures: List[Tuple[str, int, str]] = []

    # -- construction --------------------------------------------------

    def add_module(self, relpath: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as err:
            self.parse_failures.append((relpath, err.lineno or 0,
                                        err.msg or "syntax error"))
            return
        mod = ModuleInfo(
            path=relpath, name=_module_name(relpath), source=source,
            tree=tree, imports=_ImportTracker(tree),
        )
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                s = _const_str(stmt.value)
                if s is not None:
                    mod.constants[stmt.targets[0].id] = s
            elif isinstance(stmt, ast.ClassDef):
                info = _class_info(stmt, mod.name, relpath)
                mod.classes[stmt.name] = info
                self.classes_by_name.setdefault(stmt.name, []).append(info)
            elif isinstance(stmt, ast.FunctionDef):
                mod.functions[stmt.name] = stmt
        self.modules[relpath] = mod

    def finalize(self) -> None:
        """Resolve transitive actor-ness, registrations, blocking graph."""
        self._resolve_actors()
        self._collect_registrations()
        self._build_function_index()

    def _resolve_actors(self) -> None:
        def actorish(info: ClassInfo, seen: frozenset) -> bool:
            if info.key in seen:
                return False
            if info.node is not None and _is_actor_class(info.node):
                return True
            for base in info.bases:
                simple = base.split(".")[-1]
                for candidate in self.classes_by_name.get(simple, []):
                    if actorish(candidate, seen | {info.key}):
                        return True
            return False

        for path in sorted(self.modules):
            for info in self.modules[path].classes.values():
                info.is_actor = actorish(info, frozenset())

    def _collect_registrations(self) -> None:
        for path in sorted(self.modules):
            mod = self.modules[path]
            for cls, fn, call in _calls_with_context(mod.tree, mod):
                chain = _attr_chain(call.func)
                if not chain or chain.split(".")[-1] != "register_actor":
                    continue
                if len(call.args) < 2:
                    continue
                type_name = self.const_str(call.args[0], mod, cls)
                if type_name is None:
                    continue
                for cls_name in self._registered_class_names(mod, fn,
                                                            call.args[1]):
                    reg = self.registrations.setdefault(type_name, [])
                    if cls_name not in reg:
                        reg.append(cls_name)
                    types = self.types_of_class.setdefault(cls_name, [])
                    if type_name not in types:
                        types.append(type_name)

    def _registered_class_names(self, mod: ModuleInfo, fn: Optional[ast.AST],
                                arg: ast.AST) -> List[str]:
        """Class simple names the second ``register_actor`` argument may
        name — directly, through imports, or through a local variable
        assigned from known classes (``cls = A if flag else B``)."""
        chain = _attr_chain(arg)
        if chain is None:
            return []
        resolved = mod.imports.resolve(arg) or chain
        simple = resolved.split(".")[-1]
        if simple in self.classes_by_name:
            return [simple]
        if isinstance(arg, ast.Name) and fn is not None:
            names: List[str] = []
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Assign)
                        and any(isinstance(t, ast.Name) and t.id == arg.id
                                for t in node.targets)):
                    continue
                for ref in ast.walk(node.value):
                    if isinstance(ref, ast.Name):
                        cand = (mod.imports.aliases.get(ref.id, ref.id)
                                ).split(".")[-1]
                        if cand in self.classes_by_name and cand not in names:
                            names.append(cand)
            return names
        return [simple] if simple[:1].isupper() else []

    def _build_function_index(self) -> None:
        for path in sorted(self.modules):
            mod = self.modules[path]
            for name in sorted(mod.functions):
                self._index_function(mod, f"{mod.name}.{name}",
                                     mod.functions[name], cls=None)
            for cls_name in sorted(mod.classes):
                info = mod.classes[cls_name]
                for mname in sorted(info.methods):
                    method = info.methods[mname]
                    if method.node is not None:
                        self._index_function(
                            mod, f"{mod.name}.{cls_name}.{mname}",
                            method.node, cls=info)

    def _index_function(self, mod: ModuleInfo, qualname: str,
                        fn: ast.AST, cls: Optional[ClassInfo]) -> None:
        entry = FunctionInfo(qualname=qualname, path=mod.path,
                             lineno=getattr(fn, "lineno", 0), node=fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = mod.imports.resolve(node.func)
            if resolved is not None and entry.blocking is None and (
                    resolved in _BLOCKING_CALLS
                    or resolved.startswith(_BLOCKING_PREFIXES)):
                entry.blocking = (node.lineno, resolved)
                continue
            callee = self._resolve_callee(mod, cls, node.func)
            if callee is not None:
                entry.calls.append((node.lineno, callee))
        self.functions[qualname] = entry

    def _resolve_callee(self, mod: ModuleInfo, cls: Optional[ClassInfo],
                        func: ast.AST) -> Optional[str]:
        chain = _attr_chain(func)
        if chain is None:
            return None
        parts = chain.split(".")
        if parts[0] == "self" and cls is not None and len(parts) == 2:
            if parts[1] in cls.methods:
                return f"{cls.module}.{cls.name}.{parts[1]}"
            return None
        if len(parts) == 1:
            if parts[0] in mod.functions:
                return f"{mod.name}.{parts[0]}"
            resolved = mod.imports.resolve(func)
            if resolved and resolved in self.functions:
                return resolved
            if resolved and resolved != parts[0]:
                return resolved if resolved in self.functions else None
            return None
        resolved = mod.imports.resolve(func)
        if resolved and resolved in self.functions:
            return resolved
        return None

    # -- queries -------------------------------------------------------

    def const_str(self, node: ast.AST, mod: ModuleInfo,
                  cls: Optional[ClassInfo]) -> Optional[str]:
        """Resolve an expression to a compile-time string, through class
        attributes (``self.PLAYER``, ``Cls.TYPE``) and module constants."""
        s = _const_str(node)
        if s is not None:
            return s
        if isinstance(node, ast.Name):
            if cls is not None and node.id in cls.constants:
                return cls.constants[node.id]
            return mod.constants.get(node.id)
        chain = _attr_chain(node)
        if chain is None:
            return None
        parts = chain.split(".")
        if len(parts) != 2:
            return None
        owner, attr = parts
        if owner in ("self", "cls") and cls is not None:
            return cls.constants.get(attr)
        for candidate in self.classes_by_name.get(owner, []):
            if attr in candidate.constants:
                return candidate.constants[attr]
        return mod.constants.get(chain)

    def classes_for_type(self, type_name: str) -> List[ClassInfo]:
        """Classes an actor-type string can refer to (registration map,
        falling back to an exact class-name match)."""
        names = self.registrations.get(type_name)
        if not names:
            names = [type_name] if type_name in self.classes_by_name else []
        out: List[ClassInfo] = []
        for name in names:
            out.extend(self.classes_by_name.get(name, []))
        return out

    def types_for_class(self, info: ClassInfo) -> List[str]:
        """Actor-type strings a class is registered under (or its name)."""
        return self.types_of_class.get(info.name, None) or [info.name]

    def resolve_method(self, info: ClassInfo,
                       method: str) -> Tuple[Optional[MethodInfo], bool]:
        """Resolve ``method`` through the MRO within the index.

        Returns ``(method_info, certain)``.  ``certain`` is False when a
        base class could not be resolved and is not Actor-shaped — the
        method might exist there, so callers should stay silent.
        """
        seen: set = set()
        stack = [info]
        certain = True
        while stack:
            cur = stack.pop(0)
            if cur.key in seen:
                continue
            seen.add(cur.key)
            if method in cur.methods:
                return cur.methods[method], True
            for base in cur.bases:
                simple = base.split(".")[-1]
                candidates = self.classes_by_name.get(simple, [])
                if candidates:
                    stack.extend(candidates)
                elif simple == "Actor" or simple.endswith("Actor"):
                    if method in ACTOR_BASE_METHODS:
                        return MethodInfo(
                            name=method, lineno=0, min_pos=0, max_pos=None,
                            is_generator=False, idempotent=True), True
                elif simple in ("object", "Generic", "ABC", "Protocol",
                                "NamedTuple"):
                    continue
                else:
                    certain = False
        return None, certain

    def actor_classes(self) -> List[ClassInfo]:
        out = []
        for path in sorted(self.modules):
            for name in sorted(self.modules[path].classes):
                info = self.modules[path].classes[name]
                if info.is_actor:
                    out.append(info)
        return out

    def all_classes(self) -> List[ClassInfo]:
        out = []
        for path in sorted(self.modules):
            for name in sorted(self.modules[path].classes):
                out.append(self.modules[path].classes[name])
        return out

    def blocking_closure(self) -> Dict[str, List[str]]:
        """qualname -> call chain ending at a blocking primitive, for every
        function that (transitively) performs blocking I/O."""
        chains: Dict[str, List[str]] = {}
        for qualname in sorted(self.functions):
            entry = self.functions[qualname]
            if entry.blocking is not None:
                chains[qualname] = [qualname, entry.blocking[1]]
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                if qualname in chains:
                    continue
                entry = self.functions[qualname]
                for _line, callee in entry.calls:
                    if callee in chains and callee != qualname:
                        chains[qualname] = [qualname] + chains[callee]
                        changed = True
                        break
        return chains


def build_index(files: Sequence[Tuple[str, str]]) -> ProjectIndex:
    """Build the index from ``(relpath, source)`` pairs."""
    index = ProjectIndex()
    for relpath, source in files:
        index.add_module(relpath, source)
    index.finalize()
    return index
