"""The static actor interaction graph.

Runs the intraprocedural evaluator (:mod:`.cfg`) over every function
and method in the index, then closes the loop interprocedurally: refs
stored into actor fields feed the field environment of the next round,
and refs passed as ``Call`` arguments feed the parameter environment of
the *target* method (resolved through the registration map).  The
result is a directed, method-level edge set::

    (caller_type, caller_method) --Call/Tell--> (target_type, target_method)

plus the list of client entry points (``client_request`` sites).  The
type-level projection is exportable in the ``repro.graph.comm_graph``
edge format so the static graph can be diffed against a runtime
:class:`~repro.graph.comm_graph.CommGraph` (static must be a superset
of anything observed dynamically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .cfg import CallSite, MethodEval
from .index import ProjectIndex

__all__ = ["Edge", "GraphView", "InteractionGraph", "build_graph"]

TypeSet = FrozenSet[str]
EMPTY: TypeSet = frozenset()

_MAX_ROUNDS = 10


@dataclass(frozen=True)
class Edge:
    """One directed message edge between actor types, at method level."""

    caller_type: str             # actor type, or "<client>"
    caller_method: Optional[str]
    target_type: str
    target_method: Optional[str]
    kind: str                    # "call" | "tell" | "client"
    path: str
    line: int


class InteractionGraph:
    def __init__(self, index: ProjectIndex):
        self.index = index
        self.sites: List[CallSite] = []
        self.edges: List[Edge] = []
        self.field_types: Dict[Tuple[str, str], TypeSet] = {}
        self.param_types: Dict[Tuple[str, str, str], TypeSet] = {}
        self.rounds = 0

    # -- construction --------------------------------------------------

    def build(self) -> "InteractionGraph":
        prev_sig: Optional[tuple] = None
        for round_no in range(_MAX_ROUNDS):
            self.rounds = round_no + 1
            self.sites = self._evaluate_all()
            self._propagate(self.sites)
            sig = (
                tuple(sorted((k, tuple(sorted(v)))
                             for k, v in self.field_types.items())),
                tuple(sorted((k, tuple(sorted(v)))
                             for k, v in self.param_types.items())),
            )
            if sig == prev_sig:
                break
            prev_sig = sig
        self._derive_edges()
        return self

    def _evaluate_all(self) -> List[CallSite]:
        sites: List[CallSite] = []
        for path in sorted(self.index.modules):
            mod = self.index.modules[path]
            for fname in sorted(mod.functions):
                ev = MethodEval(self.index, mod, None, mod.functions[fname],
                                self_types=EMPTY)
                result = ev.run()
                sites.extend(result.sites)
            for cname in sorted(mod.classes):
                cls = mod.classes[cname]
                self_types = (frozenset(self.index.types_for_class(cls))
                              if cls.is_actor else EMPTY)
                field_env = {
                    f: types for (ckey, f), types in self.field_types.items()
                    if ckey == cls.key
                }
                for mname in sorted(cls.methods):
                    method = cls.methods[mname]
                    if method.node is None:
                        continue
                    param_env = {
                        p: types
                        for (ckey, m, p), types in self.param_types.items()
                        if ckey == cls.key and m == mname
                    }
                    ev = MethodEval(self.index, mod, cls, method.node,
                                    self_types=self_types,
                                    param_types=param_env,
                                    field_types=field_env)
                    result = ev.run()
                    sites.extend(result.sites)
                    for fname2, types in result.field_flows:
                        key = (cls.key, fname2)
                        self.field_types[key] = (
                            self.field_types.get(key, EMPTY) | types)
        return sites

    def _propagate(self, sites: Sequence[CallSite]) -> None:
        """Push argument ref types into target-method parameters."""
        for site in sites:
            if site.method is None or not site.target_types:
                continue
            if not any(site.arg_types):
                continue
            for type_name in sorted(site.target_types):
                for cls in self.index.classes_for_type(type_name):
                    method = cls.methods.get(site.method)
                    if method is None or method.node is None:
                        continue
                    args = method.node.args
                    pos = (args.posonlyargs + args.args)
                    names = [a.arg for a in pos]
                    if names and names[0] in ("self", "cls"):
                        names = names[1:]
                    for i, types in enumerate(site.arg_types):
                        if not types:
                            continue
                        if i < len(names):
                            key = (cls.key, site.method, names[i])
                        elif args.vararg is not None:
                            key = (cls.key, site.method, args.vararg.arg)
                        else:
                            continue
                        self.param_types[key] = (
                            self.param_types.get(key, EMPTY) | types)

    def _derive_edges(self) -> None:
        edges: List[Edge] = []
        seen: set = set()
        for site in self.sites:
            if site.kind == "client":
                caller_types: List[Optional[str]] = ["<client>"]
            elif site.caller_class is not None:
                candidates = self.index.classes_by_name.get(
                    site.caller_class, [])
                actor_cls = [c for c in candidates if c.is_actor]
                if not actor_cls:
                    continue          # Call built outside an actor turn
                caller_types = sorted({
                    t for c in actor_cls
                    for t in self.index.types_for_class(c)})
            else:
                continue
            for ct in caller_types:
                for tt in sorted(site.target_types):
                    edge = Edge(
                        caller_type=ct or "<client>",
                        caller_method=site.caller_method,
                        target_type=tt, target_method=site.method,
                        kind=site.kind, path=site.path, line=site.line)
                    key = (edge.caller_type, edge.caller_method,
                           edge.target_type, edge.target_method, edge.kind,
                           edge.path, edge.line)
                    if key not in seen:
                        seen.add(key)
                        edges.append(edge)
        edges.sort(key=lambda e: (e.path, e.line, e.caller_type,
                                  e.target_type, e.target_method or ""))
        self.edges = edges

    # -- queries -------------------------------------------------------

    def client_sites(self) -> List[CallSite]:
        return [s for s in self.sites if s.kind == "client"]

    def actor_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.caller_type != "<client>"]

    def type_call_graph(self, kinds: Sequence[str] = ("call",),
                        ) -> Dict[str, List[str]]:
        """Type-level directed adjacency restricted to ``kinds``."""
        adj: Dict[str, List[str]] = {}
        for edge in self.actor_edges():
            if edge.kind not in kinds:
                continue
            succ = adj.setdefault(edge.caller_type, [])
            if edge.target_type not in succ:
                succ.append(edge.target_type)
            adj.setdefault(edge.target_type, [])
        for succ in adj.values():
            succ.sort()
        return adj

    def call_cycles(self) -> List[List[str]]:
        """Type-level strongly connected components of the ``Call``-only
        graph with more than one node, plus single-node self-loops.
        Tell edges are excluded by construction: an async Tell does not
        hold the caller's turn open, so it cannot deadlock."""
        adj = self.type_call_graph(kinds=("call",))
        order: List[str] = []
        seen: set = set()

        def dfs(start: str, graph: Dict[str, List[str]],
                visit) -> None:
            stack: List[Tuple[str, int]] = [(start, 0)]
            seen.add(start)
            while stack:
                node, i = stack.pop()
                succs = graph.get(node, [])
                if i < len(succs):
                    stack.append((node, i + 1))
                    nxt = succs[i]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    visit(node)

        for node in sorted(adj):
            if node not in seen:
                dfs(node, adj, order.append)
        radj: Dict[str, List[str]] = {n: [] for n in adj}
        for u, succs in adj.items():
            for v in succs:
                radj[v].append(u)
        seen = set()
        sccs: List[List[str]] = []
        for node in reversed(order):
            if node not in seen:
                comp: List[str] = []
                dfs(node, radj, comp.append)
                sccs.append(sorted(comp))
        out = []
        for comp in sccs:
            if len(comp) > 1:
                out.append(comp)
            elif comp and comp[0] in adj.get(comp[0], []):
                out.append(comp)   # self-loop: actor Calls its own type
        out.sort()
        return out

    def method_adjacency(self) -> Dict[Tuple[str, str],
                                       List[Tuple[str, str, Edge]]]:
        """(type, method) -> [(target_type, target_method, edge)] over
        Call *and* Tell edges (a retried request replays both)."""
        adj: Dict[Tuple[str, str], List[Tuple[str, str, Edge]]] = {}
        for edge in self.actor_edges():
            if edge.caller_method is None or edge.target_method is None:
                continue
            adj.setdefault((edge.caller_type, edge.caller_method), []).append(
                (edge.target_type, edge.target_method, edge))
        for succs in adj.values():
            succs.sort(key=lambda t: (t[0], t[1], t[2].path, t[2].line))
        return adj

    def reachable_methods(self, start_type: str, start_method: str,
                          ) -> List[Tuple[str, str, List[str]]]:
        """BFS over method-level edges from one entry point.

        Returns ``[(type, method, chain)]`` including the start, where
        ``chain`` is a human-readable hop list for diagnostics."""
        adj = self.method_adjacency()
        start = (start_type, start_method)
        frontier = [start]
        chains: Dict[Tuple[str, str], List[str]] = {
            start: [f"{start_type}.{start_method}"]}
        order: List[Tuple[str, str]] = [start]
        while frontier:
            nxt: List[Tuple[str, str]] = []
            for node in frontier:
                for tt, tm, _edge in adj.get(node, []):
                    succ = (tt, tm)
                    if succ not in chains:
                        chains[succ] = chains[node] + [f"{tt}.{tm}"]
                        order.append(succ)
                        nxt.append(succ)
            frontier = nxt
        return [(t, m, chains[(t, m)]) for t, m in order]

    # -- export --------------------------------------------------------

    def type_edge_weights(self) -> Dict[Tuple[str, str], int]:
        """Undirected type-level edges (actor↔actor only), weighted by
        the number of distinct method-level call sites."""
        weights: Dict[Tuple[str, str], int] = {}
        for edge in self.actor_edges():
            pair = tuple(sorted((edge.caller_type, edge.target_type)))
            weights[pair] = weights.get(pair, 0) + 1
        return weights

    def to_comm_graph(self):
        """Materialise as :class:`repro.graph.comm_graph.CommGraph`."""
        from ...graph.comm_graph import CommGraph

        graph = CommGraph()
        for (u, v), w in sorted(self.type_edge_weights().items()):
            graph.add_edge(u, v, float(w))
        return graph

    def to_dict(self) -> dict:
        vertices = sorted({e.caller_type for e in self.edges}
                          | {e.target_type for e in self.edges})
        return {
            "schema": 2,
            "format": "comm_graph/edges",
            "vertices": vertices,
            "edges": [[u, v, w] for (u, v), w in
                      sorted(self.type_edge_weights().items())],
            "directed_edges": [
                {
                    "caller": e.caller_type, "caller_method": e.caller_method,
                    "target": e.target_type, "target_method": e.target_method,
                    "kind": e.kind, "site": f"{e.path}:{e.line}",
                }
                for e in self.edges
            ],
            # schema 2: client entry points survive the round trip so a
            # cached graph can still answer client_sites().
            "client_sites": sorted(f"{s.path}:{s.line}"
                                   for s in self.client_sites()),
            "rounds": self.rounds,
        }


class GraphView:
    """Read-only interaction graph rebuilt from a :meth:`to_dict` doc.

    Served by the project-level lint cache on warm ``--flow`` hits so
    the CLI's summary line, ``--flow-graph`` export, and the
    graph-crosscheck all work without re-running the interprocedural
    evaluator.  Only the query surface those consumers use is
    reconstructed; construction queries raise ``AttributeError``.
    """

    def __init__(self, doc: dict):
        self._doc = doc
        self.rounds = doc.get("rounds", 0)
        self.edges: List[Edge] = []
        for e in doc.get("directed_edges", []):
            site = e.get("site", ":0")
            path, _, line = site.rpartition(":")
            self.edges.append(Edge(
                caller_type=e["caller"], caller_method=e.get("caller_method"),
                target_type=e["target"], target_method=e.get("target_method"),
                kind=e["kind"], path=path,
                line=int(line) if line.isdigit() else 0))

    def to_dict(self) -> dict:
        return self._doc

    def actor_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.caller_type != "<client>"]

    def client_sites(self) -> List[str]:
        return list(self._doc.get("client_sites", []))

    def type_edge_weights(self) -> Dict[Tuple[str, str], int]:
        return {(u, v): w for u, v, w in self._doc.get("edges", [])}


def build_graph(index: ProjectIndex) -> InteractionGraph:
    return InteractionGraph(index).build()
