"""The FLOW rule family: interprocedural checks on the interaction graph.

Unlike the per-file rules in :mod:`repro.analysis.rules`, these run
once over the whole project index + interaction graph.  They share the
same :class:`~repro.analysis.findings.Finding` type and the same waiver
mechanism (a ``# repro: waive[FLOW-...]`` on the reported line), so the
report and the CI gate treat both families uniformly.

The deadlock argument behind ``FLOW-CALL-CYCLE``: the runtime executes
actors turn by turn, and a synchronous ``Call`` holds the caller's turn
open until the response arrives.  A reentrant actor (the default) lets
calls belonging to the same call chain re-enter, so ``A Call B Call A``
completes.  With ``REENTRANT = False`` the scheduler parks every new
invocation while a turn is open (``Activation.next_eligible``), so a
Call cycle through a non-reentrant actor can never make progress — the
cycle only resolves by call timeout.  The rule therefore fires exactly
when a Call-only cycle contains a non-reentrant participant.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List, Optional, Tuple, Type

from ..findings import Finding, Severity
from ..rules import _attr_chain
from .index import ProjectIndex
from .interaction import InteractionGraph

__all__ = ["FlowRule", "all_flow_rules", "run_flow_rules",
           "FLOW_UNKNOWN_METHOD", "FLOW_CALL_CYCLE",
           "FLOW_RETRY_NONIDEMPOTENT", "FLOW_BLOCKING_TRANSITIVE",
           "FLOW_MIGRATION_UNSAFE"]

FLOW_UNKNOWN_METHOD = "FLOW-UNKNOWN-METHOD"
FLOW_CALL_CYCLE = "FLOW-CALL-CYCLE"
FLOW_RETRY_NONIDEMPOTENT = "FLOW-RETRY-NONIDEMPOTENT"
FLOW_BLOCKING_TRANSITIVE = "FLOW-BLOCKING-TRANSITIVE"
FLOW_MIGRATION_UNSAFE = "FLOW-MIGRATION-UNSAFE"

_FLOW_REGISTRY: List[Type["FlowRule"]] = []


class FlowRule:
    """One project-wide rule.  Subclasses implement :meth:`check`."""

    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    description: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(rule=self.name, severity=self.severity,
                       path=path, line=line, message=message)


def _register(cls: Type[FlowRule]) -> Type[FlowRule]:
    _FLOW_REGISTRY.append(cls)
    return cls


def all_flow_rules() -> Tuple[Type[FlowRule], ...]:
    return tuple(_FLOW_REGISTRY)


@_register
class UnknownMethodRule(FlowRule):
    name = FLOW_UNKNOWN_METHOD
    description = "message targets a method the actor class does not define"
    rationale = ("Call/Tell dispatch is by string: a typo or a stale rename "
                 "only fails at runtime, inside the target silo.")

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        findings: List[Finding] = []
        for site in graph.sites:
            if site.method is None or not site.target_types:
                continue
            for type_name in sorted(site.target_types):
                classes = index.classes_for_type(type_name)
                if not classes:
                    continue        # unresolvable type: stay silent
                missing_everywhere = True
                arity_ok_somewhere = False
                uncertain = False
                sig_desc = ""
                for cls in classes:
                    method, certain = index.resolve_method(cls, site.method)
                    if method is None:
                        if not certain:
                            uncertain = True
                        continue
                    missing_everywhere = False
                    if site.n_args < 0:     # *args at the send site
                        arity_ok_somewhere = True
                        continue
                    hi = "∞" if method.max_pos is None else method.max_pos
                    sig_desc = (f"{cls.name}.{site.method} takes "
                                f"{method.min_pos}..{hi} positional args")
                    if method.min_pos <= site.n_args and (
                            method.max_pos is None
                            or site.n_args <= method.max_pos):
                        arity_ok_somewhere = True
                if uncertain:
                    continue
                if missing_everywhere:
                    names = ", ".join(sorted({c.name for c in classes}))
                    findings.append(self.finding(
                        site.path, site.line,
                        f"message {site.kind!r} targets "
                        f"{type_name}.{site.method}() but {names} defines "
                        f"no such method"))
                elif not arity_ok_somewhere:
                    findings.append(self.finding(
                        site.path, site.line,
                        f"message {site.kind!r} passes {site.n_args} "
                        f"positional arg(s) but {sig_desc}"))
        return findings


@_register
class CallCycleRule(FlowRule):
    name = FLOW_CALL_CYCLE
    description = ("synchronous Call cycle through a non-reentrant actor "
                   "(turn-based deadlock)")
    rationale = ("A Call holds the caller's turn open; a non-reentrant "
                 "callee parks new invocations while a turn is open, so a "
                 "Call cycle through it can never complete (only time out). "
                 "Tell edges are excluded: they do not hold the turn.")

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        findings: List[Finding] = []
        for cycle in graph.call_cycles():
            culprits = []
            for type_name in cycle:
                for cls in index.classes_for_type(type_name):
                    if not cls.reentrant:
                        culprits.append((type_name, cls))
            if not culprits:
                continue            # all-reentrant cycle: safe by design
            loop = " -> ".join(cycle + [cycle[0]])
            for type_name, cls in sorted(culprits,
                                         key=lambda c: (c[1].path,
                                                        c[1].lineno)):
                findings.append(self.finding(
                    cls.path, cls.lineno,
                    f"synchronous Call cycle [{loop}] includes "
                    f"non-reentrant actor {cls.name} (type "
                    f"{type_name!r}): a Call arriving while its turn is "
                    f"open is parked forever — turn-based deadlock"))
        return findings


@_register
class RetryNonIdempotentRule(FlowRule):
    name = FLOW_RETRY_NONIDEMPOTENT
    description = ("retryable client call reaches a non-idempotent state "
                   "mutation without an idempotency marker")
    rationale = ("With a retrying ResilienceConfig, a timed-out request is "
                 "re-sent; if the first attempt already mutated state, the "
                 "replay double-applies it.  Either mark the method "
                 "@idempotent (replay converges) or send the request with "
                 "idempotent=False so the retry layer never replays it.")

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        if not self._retry_armed(index):
            return []
        findings: List[Finding] = []
        for site in graph.client_sites():
            if site.idempotent_kwarg is False or site.method is None:
                continue
            hit = self._first_unsafe(index, graph, site)
            if hit is None:
                continue
            cls, mutation, chain = hit
            findings.append(self.finding(
                site.path, site.line,
                f"retryable client call to {site.method!r} reaches "
                f"non-idempotent mutation in {cls.name} "
                f"({mutation.desc} at {cls.path}:{mutation.line}) via "
                f"{' -> '.join(chain)}; mark the method @idempotent or "
                f"pass idempotent=False"))
        return findings

    @staticmethod
    def _retry_armed(index: ProjectIndex) -> bool:
        """Only meaningful when the tree constructs a retry policy."""
        for path in sorted(index.modules):
            mod = index.modules[path]
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                last = chain.split(".")[-1]
                if last == "RetryPolicy":
                    return True
                if last == "ResilienceConfig":
                    for kw in node.keywords:
                        if kw.arg == "retry" and not (
                                isinstance(kw.value, ast.Constant)
                                and kw.value.value is None):
                            return True
        return False

    def _first_unsafe(self, index: ProjectIndex, graph: InteractionGraph,
                      site) -> Optional[tuple]:
        for start_type in sorted(site.target_types):
            reached = graph.reachable_methods(start_type, site.method)
            for type_name, method_name, chain in reached:
                for cls in index.classes_for_type(type_name):
                    method = cls.methods.get(method_name)
                    if method is None or method.idempotent:
                        continue
                    if method.mutations:
                        return cls, method.mutations[0], chain
        return None


@_register
class BlockingTransitiveRule(FlowRule):
    name = FLOW_BLOCKING_TRANSITIVE
    description = ("actor method reaches blocking I/O through helper calls "
                   "(transitive ACT-BLOCKING-IO)")
    rationale = ("ACT-BLOCKING-IO only sees blocking primitives called "
                 "directly inside the actor; a helper wrapping time.sleep "
                 "stalls the silo's single-threaded stage all the same.")

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        closure = index.blocking_closure()
        findings: List[Finding] = []
        for cls in index.actor_classes():
            for mname in sorted(cls.methods):
                qual = f"{cls.module}.{cls.name}.{mname}"
                entry = index.functions.get(qual)
                if entry is None:
                    continue
                for line, callee in entry.calls:
                    chain = closure.get(callee)
                    if chain is None:
                        continue
                    hops = [q.split(".")[-1] for q in chain[:-1]]
                    findings.append(self.finding(
                        cls.path, line,
                        f"actor method {cls.name}.{mname} reaches blocking "
                        f"call {chain[-1]}() via "
                        f"{' -> '.join(hops)}: blocks the silo's "
                        f"single-threaded stage for the whole turn"))
        return findings


#: Value shapes `repro.actor.serialization` cannot migrate: exhaustible
#: or process-local objects that have no byte representation.
_UNSAFE_FACTORY_CALLS = frozenset({
    "open", "iter", "map", "filter", "zip", "enumerate", "reversed",
})
_UNSAFE_FACTORY_PREFIXES = ("threading.", "socket.", "subprocess.",
                            "multiprocessing.")


@_register
class MigrationUnsafeRule(FlowRule):
    name = FLOW_MIGRATION_UNSAFE
    description = ("actor state field assigned a value that cannot migrate "
                   "(generator, file handle, lambda, live iterator, OS "
                   "handle, or bound method)")
    rationale = ("capture_state() snapshots the actor's __dict__ for "
                 "migration; generators, open files, lambdas, and OS "
                 "handles are process-local and break the moment the "
                 "activation lands on another silo.")

    def check(self, index: ProjectIndex,
              graph: InteractionGraph) -> List[Finding]:
        findings: List[Finding] = []
        for cls in index.actor_classes():
            mod = index.modules.get(cls.path)
            for mname in sorted(cls.methods):
                method = cls.methods[mname]
                for write in method.field_writes:
                    desc = self._unsafe_desc(write.value, cls, mod)
                    if desc is None:
                        continue
                    findings.append(self.finding(
                        cls.path, write.line,
                        f"actor state field self.{write.field_name} is "
                        f"assigned {desc}; capture_state() cannot migrate "
                        f"it to another silo"))
        return findings

    @staticmethod
    def _unsafe_desc(value: ast.expr, cls, mod) -> Optional[str]:
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression (exhaustible, process-local)"
        if isinstance(value, ast.Lambda):
            return "a lambda (closures do not serialize)"
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain is None:
                return None
            resolved = mod.imports.resolve(value.func) if mod else chain
            resolved = resolved or chain
            if resolved in _UNSAFE_FACTORY_CALLS:
                return f"the result of {resolved}() (live handle/iterator)"
            if resolved.startswith(_UNSAFE_FACTORY_PREFIXES):
                return f"the result of {resolved}() (process-local OS object)"
        if isinstance(value, ast.Attribute) and cls is not None:
            chain = _attr_chain(value)
            if (chain and chain.startswith("self.")
                    and chain.count(".") == 1
                    and chain.split(".")[1] in cls.methods):
                return (f"the bound method {chain} (captures the live "
                        f"instance)")
        return None


def run_flow_rules(index: ProjectIndex,
                   graph: InteractionGraph) -> List[Finding]:
    """Run every FLOW rule; deterministic (path, line, rule) order."""
    findings: List[Finding] = []
    for rule_cls in all_flow_rules():
        findings.extend(rule_cls().check(index, graph))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
