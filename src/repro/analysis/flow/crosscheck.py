"""Static-vs-dynamic interaction-graph cross-check.

The partitioning half of the paper plans over the *observed* actor
communication graph.  The flow pass derives the same graph statically —
so the two must agree in one direction: every edge the runtime ever
records between actor types must be present in the static graph
(static ⊇ dynamic).  A dynamic edge missing from the static graph means
the flow analysis lost provenance somewhere (or code constructs refs in
a way the evaluator cannot see) — either way the static graph cannot be
trusted as a planning input, so the check fails loudly.

The dynamic side drives the same seeded Halo slice the sanitizer uses
and sweeps every silo's communication table each horizon step,
projecting ``ActorId`` pairs down to actor-type pairs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["dynamic_type_edges", "crosscheck_halo", "format_crosscheck"]


def dynamic_type_edges(requests: int = 2_000, seed: int = 5,
                       players: int = 200, num_servers: int = 3,
                       ) -> Tuple[Dict[Tuple[str, str], float], dict]:
    """Run a seeded Halo slice; return observed type-level comm edges.

    Drains each silo's communication table (as the ActOp partition
    agent would) every simulated second, so edges from activations
    that later deactivate are still captured.
    """
    from ...bench.harness import HaloExperiment

    exp = HaloExperiment(players=players, num_servers=num_servers, seed=seed)
    rt = exp.runtime
    exp.workload.start()
    exp.cluster.start()

    edges: Dict[Tuple[str, str], float] = {}

    def sweep() -> None:
        for silo in rt.silos:
            for (src, peer), weight in silo.comm_table.drain():
                pair = tuple(sorted((src.actor_type, peer.actor_type)))
                edges[pair] = edges.get(pair, 0.0) + weight

    horizon = 0.0
    while rt.requests_completed < requests and horizon < 120.0:
        horizon += 1.0
        rt.run(until=horizon)
        sweep()
    sweep()
    meta = {
        "requests_completed": rt.requests_completed,
        "horizon_s": horizon,
        "players": players,
        "num_servers": num_servers,
        "seed": seed,
    }
    return edges, meta


def crosscheck_halo(static_graph, requests: int = 2_000,
                    seed: int = 5) -> dict:
    """Diff a seeded Halo slice's observed edges against ``static_graph``
    (an :class:`~repro.analysis.flow.interaction.InteractionGraph`).

    Returns a JSON-able report; ``ok`` iff observed ⊆ static.
    """
    from ..coverage import missing_from_static

    static_pairs = set(static_graph.type_edge_weights())
    dynamic, meta = dynamic_type_edges(requests=requests, seed=seed)
    missing = missing_from_static(static_pairs, dynamic)
    return {
        "schema": 1,
        "slice": meta,
        "static_edges": [[u, v, w] for (u, v), w in
                         sorted(static_graph.type_edge_weights().items())],
        "dynamic_edges": [[u, v, w] for (u, v), w in sorted(dynamic.items())],
        "missing_from_static": [[u, v] for (u, v) in missing],
        "ok": not missing,
    }


def format_crosscheck(report: dict) -> List[str]:
    """Human-readable lines for the CLI table footer."""
    lines = [
        f"graph cross-check: {len(report['dynamic_edges'])} observed "
        f"type edge(s) over {report['slice']['requests_completed']} "
        f"requests, {len(report['static_edges'])} static edge(s)",
    ]
    if report["ok"]:
        lines.append("  every observed edge is present in the static graph "
                     "(static ⊇ dynamic)")
    else:
        for u, v in report["missing_from_static"]:
            lines.append(f"  MISSING from static graph: {u} <-> {v}")
    return lines
