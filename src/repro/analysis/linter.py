"""The lint driver: walk files, run every rule, apply waivers, report.

The contract matching the other ``repro`` subcommands: the run *fails*
(non-zero exit) iff any unwaived finding exists; waived findings are
still listed (with their justification) so the report is an audit trail
of every exemption in the tree.

Four passes share the report.  The per-file pass runs every registered
:class:`~repro.analysis.framework.Rule` on one module at a time (and is
the part the ``--cache`` per-file result cache can skip).  The opt-in
flow pass (``flow=True``) builds the project-wide index + interaction
graph from :mod:`repro.analysis.flow` over the *same* file set and
merges the interprocedural FLOW findings in; waivers apply to them
identically.  The opt-in cross-backend pass (``xbackend=True``) runs
the XB portability rules from :mod:`repro.analysis.xbackend` over the
same index machinery, and the opt-in parallel-readiness pass
(``par=True``) runs the PAR sharding rules + lookahead inference from
:mod:`repro.analysis.par` — same waiver semantics throughout.  With
``cache_dir`` set, the project-wide passes are cached too, keyed by a
whole-tree signature (every file's hash), so a clean re-run skips the
interprocedural work entirely.

Findings are deduplicated per (path, line, rule) and reported in
deterministic (path, line, rule) order regardless of traversal order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, Severity, Waiver, parse_waivers
from .framework import LintContext, all_rules
from .rules import WAIVER_JUSTIFY  # noqa: F401  (import registers the rules)

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths",
           "waiver_audit", "DEFAULT_ROOTS"]

#: The tree the repo-wide pass covers.  ``tests/`` is deliberately out:
#: tests exercise deprecated shims and nondeterminism on purpose.
DEFAULT_ROOTS = ("src/repro", "benchmarks", "examples")

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "fixtures"}


@dataclass
class LintReport:
    """Findings for a set of files, split by waiver status."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Project-level cache counters (one hit/miss per cached pass).
    project_cache_hits: int = 0
    project_cache_misses: int = 0
    #: The InteractionGraph when the flow pass ran (lint_paths(flow=True));
    #: a read-only GraphView on a warm project-cache hit.
    flow_graph: Optional[object] = None
    #: The lookahead report when the PAR pass ran (lint_paths(par=True)).
    par_report: Optional[dict] = None

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived] + self.parse_errors

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.parse_errors.extend(other.parse_errors)
        self.files_checked += other.files_checked
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    def finalize(self) -> "LintReport":
        """Deterministic order + per-(path, line, rule) dedup."""
        self.findings = _dedupe(self.findings)
        self.parse_errors = _dedupe(self.parse_errors)
        return self

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "active": [f.to_dict() for f in self.active],
            "waived": [f.to_dict() for f in self.waived],
            "counts": {
                "active": len(self.active),
                "waived": len(self.waived),
            },
        }


def _dedupe(findings: List[Finding]) -> List[Finding]:
    """Sort by (path, line, rule) and keep one finding per key.

    The sort key includes the message so the survivor of a duplicate
    key is deterministic, not traversal-dependent."""
    ordered = sorted(findings,
                     key=lambda f: (f.path, f.line, f.rule, f.message))
    out: List[Finding] = []
    last = None
    for finding in ordered:
        key = (finding.path, finding.line, finding.rule)
        if key != last:
            out.append(finding)
            last = key
    return out


def _apply_waivers(findings: Iterable[Finding],
                   waivers: List[Waiver]) -> List[Finding]:
    out: List[Finding] = []
    for finding in findings:
        waiver = next(
            (
                w for w in waivers
                if w.covers == finding.line
                and w.matches(finding.rule)
                and w.justification
            ),
            None,
        )
        if waiver is not None and finding.rule != WAIVER_JUSTIFY:
            waiver.used = True
            finding = Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                waived=True,
                justification=waiver.justification,
            )
        out.append(finding)
    return out


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[str]] = None) -> LintReport:
    """Lint one source string; ``path`` is used for reporting and
    path-scoped rules (bench exemptions)."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        report.parse_errors.append(
            Finding(
                rule="PARSE-ERROR",
                severity=Severity.ERROR,
                path=path,
                line=err.lineno or 0,
                message=f"file does not parse: {err.msg}",
            )
        )
        return report

    ctx = LintContext(path=path, source=source, tree=tree)
    raw: list[Finding] = []
    selected = set(rules) if rules is not None else None
    for rule_cls in all_rules():
        if selected is not None and rule_cls.name not in selected:
            continue
        raw.extend(rule_cls(ctx).run())

    report.findings = _apply_waivers(raw, parse_waivers(source))
    return report.finalize()


def lint_file(path: str, rel: Optional[str] = None,
              rules: Optional[Iterable[str]] = None) -> LintReport:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, rel or path, rules=rules)


def _iter_python_files(root: str) -> Iterable[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _collect_files(paths: Sequence[str],
                   base: str) -> List[Tuple[str, str]]:
    """Deduplicated ``(abspath, relpath)`` pairs, deterministic order."""
    out: List[Tuple[str, str]] = []
    seen: set = set()
    for path in paths:
        root = path if os.path.isabs(path) else os.path.join(base, path)
        if not os.path.exists(root):
            continue
        for file_path in _iter_python_files(root):
            rel = os.path.relpath(file_path, base)
            if rel not in seen:
                seen.add(rel)
                out.append((file_path, rel))
    return out


def _ruleset_signature(rules: Optional[Iterable[str]]) -> str:
    """Cache key component covering *what analysis would run*: the
    analysis-version stamp (bumped on any rule-logic change), every
    registered rule name in every family (per-file, FLOW, XB, PAR — a
    new rule in any family must invalidate cached results), the package
    version, and the rule selection."""
    import hashlib

    from .flow.rules import all_flow_rules
    from .par.rules import all_par_rules
    from .version import ANALYSIS_VERSION
    from .xbackend.rules import all_xb_rules

    names = sorted(r.name for r in all_rules())
    names += sorted(r.name for r in all_flow_rules())
    names += sorted(r.name for r in all_xb_rules())
    names += sorted(r.name for r in all_par_rules())
    selected = sorted(rules) if rules is not None else ["*"]
    try:
        from .. import __version__ as version
    except ImportError:                      # pragma: no cover
        version = "0"
    blob = "\n".join([f"analysis-v{ANALYSIS_VERSION}", version,
                      *names, "--", *selected])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def lint_paths(paths: Sequence[str] = DEFAULT_ROOTS, base: str = ".",
               rules: Optional[Iterable[str]] = None,
               flow: bool = False,
               xbackend: bool = False,
               par: bool = False,
               cache_dir: Optional[str] = None) -> LintReport:
    """Lint every ``.py`` file under each of ``paths`` (files or dirs),
    resolved against ``base``; findings report base-relative paths.

    ``flow=True`` additionally builds the project-wide index over the
    same file set and merges the interprocedural FLOW findings.
    ``xbackend=True`` runs the cross-backend portability pass (the XB
    family) over the same file set and merges its findings.
    ``par=True`` runs the parallel-sharding readiness pass (the PAR
    family + lookahead report) over the same file set.
    ``cache_dir`` enables the per-file result cache *and* the
    project-level cache: project-wide pass results (raw findings,
    interaction-graph document, lookahead report) are keyed by a
    whole-tree signature over every file's content hash, so a clean
    re-run skips the interprocedural fixpoint entirely.  Waivers and
    rule selection are re-applied on every load — they derive from the
    same sources the signature covers.
    """
    report = LintReport()
    cache = None
    if cache_dir is not None:
        from .cache import LintCache
        cache = LintCache(cache_dir, _ruleset_signature(rules))

    files = _collect_files(paths, base)
    sources: List[Tuple[str, str]] = []      # (relpath, source) for flow
    for file_path, rel in files:
        with open(file_path, "r", encoding="utf-8") as fh:
            source = fh.read()
        sources.append((rel, source))
        cached = cache.get(rel, file_path, source) if cache else None
        if cached is not None:
            findings, parse_errors = cached
            report.findings.extend(findings)
            report.parse_errors.extend(parse_errors)
            report.files_checked += 1
        else:
            sub = lint_source(source, rel, rules=rules)
            if cache is not None:
                cache.put(rel, file_path, source,
                          sub.findings, sub.parse_errors)
            report.extend(sub)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses

    selected = set(rules) if rules is not None else None
    waiver_map = None
    if flow or xbackend or par:
        waiver_map = {rel: parse_waivers(src) for rel, src in sources}

    def _merge_project_findings(findings: Iterable[Finding]) -> None:
        merged: List[Finding] = []
        for finding in findings:
            if finding.rule == "PARSE-ERROR":
                continue              # the per-file pass reported it
            if selected is not None and finding.rule not in selected:
                continue
            merged.extend(_apply_waivers(
                [finding], waiver_map.get(finding.path, [])))
        report.findings.extend(merged)

    project = None
    if cache is not None and (flow or xbackend or par):
        from .cache import ProjectCache
        project = ProjectCache(cache_dir, cache.signature, sources)

    def _project_get(family: str):
        if project is None:
            return None
        entry = project.get(family)
        if entry is None:
            report.project_cache_misses += 1
        else:
            report.project_cache_hits += 1
        return entry

    if flow:
        cached = _project_get("flow")
        if cached is not None:
            from .flow.interaction import GraphView

            flow_findings = cached["findings"]
            report.flow_graph = GraphView(cached["graph"])
        else:
            from .flow import analyze_files

            _index, graph, flow_findings = analyze_files(sources)
            report.flow_graph = graph
            if project is not None:
                project.put("flow", flow_findings,
                            {"graph": graph.to_dict()})
        _merge_project_findings(flow_findings)

    if xbackend:
        cached = _project_get("xbackend")
        if cached is not None:
            xb_findings = cached["findings"]
        else:
            from .xbackend import analyze_xbackend

            _xb_index, xb_findings = analyze_xbackend(sources)
            if project is not None:
                project.put("xbackend", xb_findings, {})
        _merge_project_findings(xb_findings)

    if par:
        cached = _project_get("par")
        if cached is not None:
            par_findings = cached["findings"]
            report.par_report = cached["lookahead"]
        else:
            from .par import analyze_par, lookahead_report

            par_index, par_graph, par_findings = analyze_par(sources)
            report.par_report = lookahead_report(par_index, par_graph)
            if project is not None:
                project.put("par", par_findings,
                            {"lookahead": report.par_report})
        _merge_project_findings(par_findings)

    if project is not None:
        project.save()

    return report.finalize()


def waiver_audit(paths: Sequence[str] = DEFAULT_ROOTS,
                 base: str = ".") -> dict:
    """Every active ``# repro: waive[...]`` in the tree, as an audit
    document: file, line, covered line, rules, justification."""
    entries = []
    for file_path, rel in _collect_files(paths, base):
        with open(file_path, "r", encoding="utf-8") as fh:
            source = fh.read()
        for waiver in parse_waivers(source):
            entries.append({
                "path": rel,
                "line": waiver.line,
                "covers": waiver.covers,
                "rules": sorted(waiver.rules),
                "justification": waiver.justification,
                "justified": bool(waiver.justification),
            })
    entries.sort(key=lambda e: (e["path"], e["line"]))
    return {
        "schema": 1,
        "count": len(entries),
        "unjustified": sum(1 for e in entries if not e["justified"]),
        "waivers": entries,
    }
