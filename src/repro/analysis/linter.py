"""The lint driver: walk files, run every rule, apply waivers, report.

The contract matching the other ``repro`` subcommands: the run *fails*
(non-zero exit) iff any unwaived finding exists; waived findings are
still listed (with their justification) so the report is an audit trail
of every exemption in the tree.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .findings import Finding, Severity, parse_waivers
from .framework import LintContext, all_rules
from .rules import WAIVER_JUSTIFY  # noqa: F401  (import registers the rules)

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths", "DEFAULT_ROOTS"]

#: The tree the repo-wide pass covers.  ``tests/`` is deliberately out:
#: tests exercise deprecated shims and nondeterminism on purpose.
DEFAULT_ROOTS = ("src/repro", "benchmarks", "examples")

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "fixtures"}


@dataclass
class LintReport:
    """Findings for a set of files, split by waiver status."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived] + self.parse_errors

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        return not self.active

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.parse_errors.extend(other.parse_errors)
        self.files_checked += other.files_checked

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "active": [f.to_dict() for f in self.active],
            "waived": [f.to_dict() for f in self.waived],
            "counts": {
                "active": len(self.active),
                "waived": len(self.waived),
            },
        }


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[str]] = None) -> LintReport:
    """Lint one source string; ``path`` is used for reporting and
    path-scoped rules (bench exemptions)."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        report.parse_errors.append(
            Finding(
                rule="PARSE-ERROR",
                severity=Severity.ERROR,
                path=path,
                line=err.lineno or 0,
                message=f"file does not parse: {err.msg}",
            )
        )
        return report

    ctx = LintContext(path=path, source=source, tree=tree)
    raw: list[Finding] = []
    selected = set(rules) if rules is not None else None
    for rule_cls in all_rules():
        if selected is not None and rule_cls.name not in selected:
            continue
        raw.extend(rule_cls(ctx).run())

    waivers = parse_waivers(source)
    for finding in raw:
        waiver = next(
            (
                w for w in waivers
                if w.covers == finding.line
                and w.matches(finding.rule)
                and w.justification
            ),
            None,
        )
        if waiver is not None and finding.rule != WAIVER_JUSTIFY:
            waiver.used = True
            finding = Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                waived=True,
                justification=waiver.justification,
            )
        report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def lint_file(path: str, rel: Optional[str] = None,
              rules: Optional[Iterable[str]] = None) -> LintReport:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, rel or path, rules=rules)


def _iter_python_files(root: str) -> Iterable[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str] = DEFAULT_ROOTS, base: str = ".",
               rules: Optional[Iterable[str]] = None) -> LintReport:
    """Lint every ``.py`` file under each of ``paths`` (files or dirs),
    resolved against ``base``; findings report base-relative paths."""
    report = LintReport()
    for path in paths:
        root = path if os.path.isabs(path) else os.path.join(base, path)
        if not os.path.exists(root):
            continue
        for file_path in _iter_python_files(root):
            rel = os.path.relpath(file_path, base)
            report.extend(lint_file(file_path, rel=rel, rules=rules))
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
