"""Findings, severities, and inline waivers for the lint pass.

A finding is one rule violation at one (file, line).  Waivers are inline
comments of the form::

    x = list(some_set)  # repro: waive[DET-SET-ITER] -- order-free: summed

    # repro: waive[DET-WALLCLOCK] -- display-only wall timing
    elapsed = time.perf_counter() - t0

A trailing waiver covers its own line; a standalone comment line covers
the next source line.  Several rules may be waived at once
(``waive[RULE-A,RULE-B]``).  The justification after ``--`` is
*required*: a waiver without one does not suppress anything and is
itself reported (``WAIVER-JUSTIFY``), so every exemption in the tree
carries its reasoning next to the code it exempts.
"""

from __future__ import annotations

import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Severity", "Finding", "Waiver", "parse_waivers", "WAIVER_RE"]


class Severity(enum.Enum):
    """Per-rule severity; any unwaived finding fails the lint run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    waived: bool = False
    justification: Optional[str] = None

    def to_dict(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "waived": self.waived,
        }
        if self.waived:
            doc["justification"] = self.justification
        return doc

    def render(self) -> str:
        mark = " (waived)" if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}]{mark} {self.message}"

    @classmethod
    def from_dict(cls, doc: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the lint result cache)."""
        return cls(
            rule=doc["rule"],
            severity=Severity(doc["severity"]),
            path=doc["path"],
            line=doc["line"],
            message=doc["message"],
            waived=doc.get("waived", False),
            justification=doc.get("justification"),
        )


WAIVER_RE = re.compile(
    r"#\s*repro:\s*waive\[(?P<rules>[A-Z*][A-Z0-9*,\-\s]*)\]"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass
class Waiver:
    """A parsed ``# repro: waive[...]`` comment."""

    rules: frozenset[str]
    line: int            # line of the comment itself
    covers: int          # source line the waiver applies to
    justification: Optional[str]
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_waivers(source: str) -> list[Waiver]:
    """Extract every waiver comment from ``source``.

    Uses the tokenizer (not a line regex) so ``# repro: waive`` text inside
    string literals is never mistaken for a waiver.  Tokenisation errors
    (the file will fail to parse anyway) yield an empty list.
    """
    waivers: list[Waiver] = []
    standalone: list[Waiver] = []  # comment-only lines awaiting their target
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = WAIVER_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            waiver = Waiver(
                rules=rules,
                line=tok.start[0],
                covers=tok.start[0],
                justification=match.group("why"),
            )
            waivers.append(waiver)
            if tok.line.lstrip().startswith("#"):
                standalone.append(waiver)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.COMMENT,
        ):
            # First real token after a standalone waiver comment: that is
            # the line the waiver covers.
            if standalone:
                for waiver in standalone:
                    waiver.covers = tok.start[0]
                standalone = []
    return waivers
