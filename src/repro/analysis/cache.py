"""Per-file lint result cache (opt-in via ``repro lint --cache``).

One JSON entry per linted file under ``.repro-lint-cache/``, keyed by
the file's repo-relative path and validated by ``(mtime_ns, size)``
with a sha256 fallback: a touched-but-identical file revalidates by
hash and the entry's stat fields are refreshed.  Entries also carry a
ruleset signature (rule names + selection + package version) so adding
or selecting rules invalidates stale results.

The project-wide passes (FLOW/XB/PAR) are interprocedural — any file
can change another file's findings — so they cannot be cached per file.
:class:`ProjectCache` caches them at the only granularity that is
sound: the whole tree.  One ``project.json`` entry keyed by the ruleset
signature plus a *tree signature* (sha256 over every file's path and
content hash, in sorted order) stores each pass's raw findings and
side documents (interaction graph, lookahead report); any edit to any
file changes the tree signature and invalidates every project entry at
once.  Waivers and rule selection are re-applied by the linter on load,
so the cache stores analysis results, not policy.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["LintCache", "ProjectCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_SCHEMA = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    def __init__(self, root: str, ruleset_signature: str):
        self.root = root
        self.signature = ruleset_signature
        self.hits = 0
        self.misses = 0
        os.makedirs(root, exist_ok=True)

    def _entry_path(self, rel: str) -> str:
        digest = _sha256(rel.replace("\\", "/").encode("utf-8"))[:24]
        return os.path.join(self.root, f"{digest}.json")

    def get(self, rel: str, abspath: str,
            source: str) -> Optional[tuple]:
        """Cached ``(findings, parse_errors)`` for ``rel``, or None."""
        entry_path = self._entry_path(rel)
        try:
            with open(entry_path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (entry.get("schema") != _SCHEMA
                or entry.get("path") != rel
                or entry.get("signature") != self.signature):
            self.misses += 1
            return None
        try:
            stat = os.stat(abspath)
        except OSError:
            self.misses += 1
            return None
        fresh = (entry.get("mtime_ns") == stat.st_mtime_ns
                 and entry.get("size") == stat.st_size)
        if not fresh:
            # mtime moved: revalidate by content hash (e.g. a clean
            # checkout or a touch without edits).
            if entry.get("sha256") != _sha256(source.encode("utf-8")):
                self.misses += 1
                return None
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self._write(entry_path, entry)
        self.hits += 1
        return (
            [Finding.from_dict(d) for d in entry.get("findings", [])],
            [Finding.from_dict(d) for d in entry.get("parse_errors", [])],
        )

    def put(self, rel: str, abspath: str, source: str,
            findings: list, parse_errors: list) -> None:
        try:
            stat = os.stat(abspath)
        except OSError:
            return
        entry = {
            "schema": _SCHEMA,
            "path": rel,
            "signature": self.signature,
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "sha256": _sha256(source.encode("utf-8")),
            "findings": [_finding_doc(f) for f in findings],
            "parse_errors": [_finding_doc(f) for f in parse_errors],
        }
        self._write(self._entry_path(rel), entry)

    @staticmethod
    def _write(path: str, entry: dict) -> None:
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            pass                      # cache is best-effort


def _finding_doc(finding: Finding) -> dict:
    doc = finding.to_dict()
    # to_dict drops the justification for unwaived findings; keep the
    # round-trip exact regardless.
    doc["justification"] = finding.justification
    return doc


def tree_signature(sources: Sequence[Tuple[str, str]],
                   ruleset_signature: str = "") -> str:
    """Whole-tree signature: sha256 over every ``(relpath, sha256)``
    pair in sorted order, salted with the ruleset signature.  Any edit,
    addition, or removal of any file changes it."""
    sha = hashlib.sha256()
    sha.update(ruleset_signature.encode("utf-8"))
    for rel, source in sorted(sources):
        sha.update(b"\x00")
        sha.update(rel.replace("\\", "/").encode("utf-8"))
        sha.update(b"\x00")
        sha.update(_sha256(source.encode("utf-8")).encode("utf-8"))
    return sha.hexdigest()[:32]


class ProjectCache:
    """Whole-tree cache for the project-wide passes (see module doc).

    ``get``/``put`` trade ``{"findings": [Finding, ...], **extras}``
    per family ("flow", "xbackend", "par"); extras are JSON documents
    (the interaction-graph dict, the lookahead report).  ``save()``
    persists staged results; entries from a previous run with the same
    signatures survive a partial run (e.g. ``--flow`` then
    ``--flow --par`` reuses the flow entry and adds the par one).
    """

    _SCHEMA = 1

    def __init__(self, root: str, ruleset_signature: str,
                 sources: Sequence[Tuple[str, str]]):
        self.root = root
        self.signature = ruleset_signature
        self.tree = tree_signature(sources, ruleset_signature)
        self.path = os.path.join(root, "project.json")
        self._families: Dict[str, dict] = {}
        self._dirty = False
        os.makedirs(root, exist_ok=True)
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return
        if (entry.get("schema") == self._SCHEMA
                and entry.get("signature") == self.signature
                and entry.get("tree") == self.tree
                and isinstance(entry.get("families"), dict)):
            self._families = entry["families"]

    def get(self, family: str) -> Optional[dict]:
        """Cached results for one pass, or None.  Returns a dict with
        ``findings`` rebuilt as :class:`Finding` objects plus whatever
        extras ``put`` stored."""
        doc = self._families.get(family)
        if not isinstance(doc, dict) or "findings" not in doc:
            return None
        try:
            findings = [Finding.from_dict(d) for d in doc["findings"]]
        except (KeyError, TypeError, ValueError):
            return None
        out = {k: v for k, v in doc.items() if k != "findings"}
        out["findings"] = findings
        return out

    def put(self, family: str, findings: List[Finding],
            extras: dict) -> None:
        doc = dict(extras)
        doc["findings"] = [_finding_doc(f) for f in findings]
        self._families[family] = doc
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        LintCache._write(self.path, {
            "schema": self._SCHEMA,
            "signature": self.signature,
            "tree": self.tree,
            "families": self._families,
        })
        self._dirty = False
