"""Per-file lint result cache (opt-in via ``repro lint --cache``).

One JSON entry per linted file under ``.repro-lint-cache/``, keyed by
the file's repo-relative path and validated by ``(mtime_ns, size)``
with a sha256 fallback: a touched-but-identical file revalidates by
hash and the entry's stat fields are refreshed.  Entries also carry a
ruleset signature (rule names + selection + package version) so adding
or selecting rules invalidates stale results.

Only the *per-file* pass is cached.  The flow pass is interprocedural —
any file can change another file's findings — so it is recomputed on
every run (it is one sweep over already-parsed sources, not the
dominant cost).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from .findings import Finding

__all__ = ["LintCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_SCHEMA = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    def __init__(self, root: str, ruleset_signature: str):
        self.root = root
        self.signature = ruleset_signature
        self.hits = 0
        self.misses = 0
        os.makedirs(root, exist_ok=True)

    def _entry_path(self, rel: str) -> str:
        digest = _sha256(rel.replace("\\", "/").encode("utf-8"))[:24]
        return os.path.join(self.root, f"{digest}.json")

    def get(self, rel: str, abspath: str,
            source: str) -> Optional[tuple]:
        """Cached ``(findings, parse_errors)`` for ``rel``, or None."""
        entry_path = self._entry_path(rel)
        try:
            with open(entry_path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (entry.get("schema") != _SCHEMA
                or entry.get("path") != rel
                or entry.get("signature") != self.signature):
            self.misses += 1
            return None
        try:
            stat = os.stat(abspath)
        except OSError:
            self.misses += 1
            return None
        fresh = (entry.get("mtime_ns") == stat.st_mtime_ns
                 and entry.get("size") == stat.st_size)
        if not fresh:
            # mtime moved: revalidate by content hash (e.g. a clean
            # checkout or a touch without edits).
            if entry.get("sha256") != _sha256(source.encode("utf-8")):
                self.misses += 1
                return None
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
            self._write(entry_path, entry)
        self.hits += 1
        return (
            [Finding.from_dict(d) for d in entry.get("findings", [])],
            [Finding.from_dict(d) for d in entry.get("parse_errors", [])],
        )

    def put(self, rel: str, abspath: str, source: str,
            findings: list, parse_errors: list) -> None:
        try:
            stat = os.stat(abspath)
        except OSError:
            return
        entry = {
            "schema": _SCHEMA,
            "path": rel,
            "signature": self.signature,
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "sha256": _sha256(source.encode("utf-8")),
            "findings": [_finding_doc(f) for f in findings],
            "parse_errors": [_finding_doc(f) for f in parse_errors],
        }
        self._write(self._entry_path(rel), entry)

    @staticmethod
    def _write(path: str, entry: dict) -> None:
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            pass                      # cache is best-effort


def _finding_doc(finding: Finding) -> dict:
    doc = finding.to_dict()
    # to_dict drops the justification for unwaived findings; keep the
    # round-trip exact regardless.
    doc["justification"] = finding.justification
    return doc
