"""Shared static ⊇ dynamic coverage machinery.

Three passes ship a dynamic cross-check in the same tradition: the
FLOW graph check (observed comm edges ⊆ static interaction graph), the
XB payload check (observed aliasing/pickle hazards covered by static
XB findings), and the PAR window check (observed same-window cross-silo
deliveries explained by static PAR findings).  Each drives a seeded
slice with a probe armed and demands the static over-approximation
covers everything the run observed.  The generic halves — reading the
tree, mapping findings back to ``(class, method, rule)`` sites, diffing
dynamic events against that coverage, and diffing plain item sets —
live here so the three drivers stay thin and agree on report shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from .findings import Finding
from .flow.index import ProjectIndex

__all__ = ["Coverage", "read_sources", "static_coverage",
           "crosscheck_events", "crosscheck_presence",
           "missing_from_static"]

Coverage = Set[Tuple[str, str, str]]        # (class, method, rule)


def read_sources(paths: Sequence[str], base: str = ".",
                 ) -> List[Tuple[str, str]]:
    """``(relpath, source)`` pairs for every ``.py`` under ``paths``,
    in the linter's deterministic traversal order."""
    from .linter import _collect_files

    sources: List[Tuple[str, str]] = []
    for file_path, rel in _collect_files(paths, base):
        with open(file_path, "r", encoding="utf-8") as fh:
            sources.append((rel, fh.read()))
    return sources


def static_coverage(index: ProjectIndex,
                    findings: Iterable[Finding]) -> Coverage:
    """Map findings back to ``(class, method, rule)`` triples by line
    containment in the indexed method bodies.  Waived findings count:
    a waiver is a human-audited acknowledgement, not a blind spot."""
    spans: Dict[str, List[Tuple[int, int, str, str]]] = {}
    for cls in index.all_classes():
        for mname in sorted(cls.methods):
            node = cls.methods[mname].node
            if node is None:
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            spans.setdefault(cls.path, []).append(
                (node.lineno, end, cls.name, mname))
    out: Coverage = set()
    for finding in findings:
        for start, end, cls_name, mname in spans.get(finding.path, []):
            if start <= finding.line <= end:
                out.add((cls_name, mname, finding.rule))
    return out


def crosscheck_events(coverage: Coverage, events: Sequence,
                      kind_to_rule: Mapping[str, str]) -> dict:
    """Demand every dynamic event is covered statically.

    ``events`` carry ``kind``/``sender``/``method`` attributes (the
    sanitizer's :class:`~repro.analysis.sanitizer.PayloadEvent` shape);
    an event is covered when a static finding with the rule
    ``kind_to_rule[kind]`` lands inside the same sender class + method.
    Kinds absent from the mapping are ignored.
    """
    uncovered: List[dict] = []
    for event in events:
        rule = kind_to_rule.get(event.kind)
        if rule is None:
            continue
        if (event.sender, event.method, rule) not in coverage:
            entry = event.to_dict()
            entry["expected_rule"] = rule
            uncovered.append(entry)
    return {
        "schema": 1,
        "ok": not uncovered,
        "dynamic_events": [e.to_dict() for e in events],
        "uncovered": uncovered,
    }


def crosscheck_presence(findings: Iterable[Finding], events: Sequence,
                        rule: str) -> dict:
    """Config-level coverage: every dynamic event is covered iff the
    static findings contain at least one ``rule`` finding *anywhere* in
    the analyzed sources.

    Used when the dynamic event carries no sender class/method to match
    site-by-site (the PAR window shadow records silo ids, not code
    locations): the hazard is a property of the driven *configuration*,
    so one static finding against that configuration explains every
    event it produces.
    """
    covered = any(f.rule == rule for f in findings)
    uncovered: List[dict] = []
    if not covered:
        for event in events:
            entry = event.to_dict()
            entry["expected_rule"] = rule
            uncovered.append(entry)
    return {
        "schema": 1,
        "ok": not uncovered,
        "dynamic_events": [e.to_dict() for e in events],
        "uncovered": uncovered,
    }


def missing_from_static(static_items: Iterable,
                        dynamic_items: Iterable) -> list:
    """Observed items absent from the static over-approximation, in
    deterministic order.  Empty means static ⊇ dynamic holds."""
    static_set = set(static_items)
    return sorted(item for item in set(dynamic_items)
                  if item not in static_set)
