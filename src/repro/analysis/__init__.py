"""Static analysis + runtime sanitizer for the reproduction's invariants.

Two halves of one guarantee.  The linter (:mod:`repro.analysis.linter`)
machine-checks at rest what the digest tests check at runtime: seeded
runs must be bit-identical, actors must own only their state, internal
code must not lean on deprecated API.  The sanitizer
(:mod:`repro.analysis.sanitizer`) watches a live cluster for the dynamic
versions of the same hazards — same-instant cross-activation state
conflicts, shared RNG stream draws, and hash-order-dependent results.

Exposed through ``repro lint`` (see ``python -m repro lint --help``).
"""

from .findings import Finding, Severity, Waiver, parse_waivers
from .framework import LintContext, Rule, all_rules, get_rule, register
from .linter import DEFAULT_ROOTS, LintReport, lint_file, lint_paths, lint_source
from .sanitizer import (
    Conflict,
    OrderProbe,
    PayloadEvent,
    Sanitizer,
    current,
    detect_order_dependence,
)
from .version import ANALYSIS_VERSION

__all__ = [
    "ANALYSIS_VERSION",
    "PayloadEvent",
    "Finding",
    "Severity",
    "Waiver",
    "parse_waivers",
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "DEFAULT_ROOTS",
    "LintReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Conflict",
    "OrderProbe",
    "Sanitizer",
    "current",
    "detect_order_dependence",
]
