"""The lint rules: determinism, actor, and API hygiene.

Three families, mirroring the reproduction's invariants:

* ``DET-*`` — anything that could make two seeded runs diverge: wall
  clocks, global RNG, iteration order of hash-based containers, and
  order-sensitive float accumulation.
* ``ACT-*`` — the actor programming model's contract: handlers own only
  their activation's state, never block a SEDA stage thread on real I/O,
  and communicate through ``Call``/``Tell`` rather than direct method
  invocation on a reference.
* ``API-*`` — internal code must not use API surfaces we have already
  deprecated, and the package's declared exports must actually exist.

Rules are static heuristics: they over-approximate on purpose and rely
on ``# repro: waive[RULE] -- why`` comments for the (few) intentional
exceptions, so every exemption is visible and justified in-tree.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Finding, Severity, parse_waivers
from .framework import LintContext, Rule, register

__all__ = ["WAIVER_JUSTIFY"]

WAIVER_JUSTIFY = "WAIVER-JUSTIFY"


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for ``a.b.c`` expressions built from Names; else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTracker(ast.NodeVisitor):
    """Resolve local names through ``import``/``from`` aliases.

    ``from time import perf_counter as pc`` makes ``pc()`` resolve to
    ``time.perf_counter``; ``import numpy as np`` makes ``np.random.x``
    resolve to ``numpy.random.x``.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        self.aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolved dotted name of a call target, through import aliases."""
        dotted = _attr_chain(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        chain = _attr_chain(base)
        if chain is not None:
            names.append(chain.split(".")[-1])
    return names


def _is_actor_class(cls: ast.ClassDef) -> bool:
    """Heuristic: a class whose base name is or ends in ``Actor``."""
    return any(b == "Actor" or b.endswith("Actor") for b in _base_names(cls))


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}


class _SetTracker(ast.NodeVisitor):
    """Shared machinery for rules about unordered-container iteration.

    Tracks, per lexical scope, which local names are statically known to
    hold ``set``/``frozenset`` values, plus ``self.<attr>`` fields a
    class assigns set values to.  Deliberately syntactic: we only claim
    set-ness when the source says so (a set literal/comprehension, a
    ``set()``/``frozenset()`` call, a set-operator expression, or a
    ``set[...]`` annotation).
    """

    def __init__(self, ctx: LintContext):
        # NodeVisitor needs no __init__; avoid super() so subclasses can mix
        # this into Rule without re-running Rule.__init__.
        self.ctx = ctx
        self.imports = _ImportTracker(ctx.tree)
        self._scopes: list[dict[str, bool]] = [{}]

    # -- scope plumbing -------------------------------------------------
    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _mark(self, name: str, is_set: bool) -> None:
        scope = self._scopes[-1]
        if is_set:
            scope[name] = True
        else:
            scope.pop(name, None)

    def _known_set_name(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._scopes))

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = _attr_chain(node.func)
            if func in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return self._known_set_name(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self._known_set_name(f"self.{node.attr}")
        return False

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        chain = _attr_chain(annotation)
        return chain is not None and chain.split(".")[-1] in _SET_ANNOTATIONS

    # -- assignment tracking --------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self.is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._mark(target.id, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            is_set = self._annotation_is_set(node.annotation) or (
                node.value is not None and self.is_set_expr(node.value)
            )
            self._mark(node.target.id, is_set)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)  # |= etc. preserve set-ness; nothing to do

    # -- scope boundaries ------------------------------------------------
    def _visit_function(self, node) -> None:
        self._push_scope()
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if arg.annotation is not None and self._annotation_is_set(arg.annotation):
                self._mark(arg.arg, True)
        self.generic_visit(node)
        self._pop_scope()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._push_scope()
        # Prescan: fields the class itself initialises to sets make
        # ``self.<attr>`` set-typed in every method (``__init__`` usually
        # runs first but appears in arbitrary source order).
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and (
                isinstance(sub.value, (ast.Set, ast.SetComp))
                or (
                    isinstance(sub.value, ast.Call)
                    and _attr_chain(sub.value.func) in ("set", "frozenset")
                )
            ):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._mark(f"self.{target.attr}", True)
            elif isinstance(sub, ast.AnnAssign) and self._annotation_is_set(
                sub.annotation
            ):
                if (
                    isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"
                ):
                    self._mark(f"self.{sub.target.attr}", True)
        self.generic_visit(node)
        self._pop_scope()


# ----------------------------------------------------------------------
# DET-WALLCLOCK
# ----------------------------------------------------------------------
_MEASUREMENT_CLOCKS = {
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
}
_WALLCLOCK_CALLS = _MEASUREMENT_CLOCKS | {
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    name = "DET-WALLCLOCK"
    severity = Severity.ERROR
    description = "wall-clock reads in simulation code"
    rationale = (
        "Simulated components must read sim.now; a wall-clock read makes "
        "runs machine- and load-dependent.  Measurement clocks "
        "(perf_counter/monotonic) are allowed only under bench paths."
    )

    def run(self):
        self._imports = _ImportTracker(self.ctx.tree)
        self._bench = self.ctx.in_tree("bench", "benchmarks")
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._imports.resolve(node.func)
        if resolved in _WALLCLOCK_CALLS:
            if not (self._bench and resolved in _MEASUREMENT_CLOCKS):
                kind = ("measurement clock outside bench paths"
                        if resolved in _MEASUREMENT_CLOCKS else "wall-clock read")
                self.report(node, f"{kind}: {resolved}() — use sim.now")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET-GLOBAL-RNG
# ----------------------------------------------------------------------
@register
class GlobalRngRule(Rule):
    name = "DET-GLOBAL-RNG"
    severity = Severity.ERROR
    description = "global or unseeded random number generation"
    rationale = (
        "All randomness must come from sim/rng.py named substreams so "
        "that components draw independently and runs replay bit-identically "
        "regardless of PYTHONHASHSEED or module import order."
    )

    def run(self):
        self._imports = _ImportTracker(self.ctx.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._imports.resolve(node.func)
        if resolved is not None:
            if resolved == "random.Random":
                if not node.args and not node.keywords:
                    self.report(node, "random.Random() without a seed is "
                                      "OS-entropy seeded — pass a derived seed")
            elif resolved == "random.SystemRandom" or resolved.startswith(
                "random.SystemRandom."
            ):
                self.report(node, f"{resolved} is nondeterministic by design")
            elif resolved.startswith("random."):
                self.report(node, f"module-level {resolved}() draws from the "
                                  "global RNG — use a named substream from "
                                  "RngRegistry.stream()")
            elif resolved.startswith("numpy.random."):
                if resolved == "numpy.random.default_rng" and node.args:
                    pass  # explicitly seeded generator construction
                else:
                    self.report(node, f"{resolved}() uses numpy's global or "
                                      "unseeded RNG — derive a seeded "
                                      "Generator instead")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET-SET-ITER
# ----------------------------------------------------------------------
_ORDER_FREE_CONSUMERS = {
    "sorted", "min", "max", "any", "all", "len", "set", "frozenset", "sum",
}
_ORDERED_MATERIALISERS = {"list", "tuple", "enumerate", "iter"}


@register
class SetIterationRule(_SetTracker, Rule):
    name = "DET-SET-ITER"
    severity = Severity.ERROR
    description = "iteration over a set/frozenset in order-sensitive position"
    rationale = (
        "set iteration order depends on element hashes (and, for str keys, "
        "PYTHONHASHSEED); any event scheduling or float accumulation driven "
        "by it diverges between runs.  Wrap in sorted(...) or use an "
        "insertion-ordered dict."
    )

    def __init__(self, ctx: LintContext):
        Rule.__init__(self, ctx)
        _SetTracker.__init__(self, ctx)
        self._order_free: set[int] = set()

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(node, f"{what} iterates a set in hash order — wrap in "
                          "sorted(...) or keep an insertion-ordered dict")

    def visit_Call(self, node: ast.Call) -> None:
        func = _attr_chain(node.func)
        if func in _ORDER_FREE_CONSUMERS:
            for arg in node.args:
                self._order_free.add(id(arg))
        elif func in _ORDERED_MATERIALISERS and id(node) not in self._order_free:
            if node.args and self.is_set_expr(node.args[0]):
                self._flag(node, f"{func}(...)")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self._flag(node, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        exempt = isinstance(node, ast.GeneratorExp) and id(node) in self._order_free
        if not exempt:
            for gen in node.generators:
                if self.is_set_expr(gen.iter):
                    self._flag(node, type(node).__name__)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    # SetComp over a set is order-free (set in, set out): not visited.


# ----------------------------------------------------------------------
# DET-ID-ORDER
# ----------------------------------------------------------------------
@register
class IdOrderRule(Rule):
    name = "DET-ID-ORDER"
    severity = Severity.ERROR
    description = "ordering keyed on id() or hash()"
    rationale = (
        "id() is a CPython address and hash() of str varies with "
        "PYTHONHASHSEED; any sort keyed on them is a different order every "
        "process.  Key on stable identities (ActorId tuples) instead."
    )

    _SORTERS = {"sorted", "min", "max"}

    def visit_Call(self, node: ast.Call) -> None:
        func = _attr_chain(node.func)
        is_sorter = func in self._SORTERS or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if is_sorter:
            for kw in node.keywords:
                if kw.arg == "key" and self._key_uses_identity(kw.value):
                    self.report(node, "sort key uses id()/hash() — "
                                      "address-/hashseed-dependent order")
        self.generic_visit(node)

    @staticmethod
    def _key_uses_identity(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return True
        for sub in ast.walk(key):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("id", "hash")
            ):
                return True
        return False


# ----------------------------------------------------------------------
# DET-FLOAT-SUM
# ----------------------------------------------------------------------
@register
class FloatSumRule(_SetTracker, Rule):
    name = "DET-FLOAT-SUM"
    severity = Severity.ERROR
    description = "sum() over an unordered iterable"
    rationale = (
        "float addition is not associative; sum() over a set accumulates "
        "in hash order, so the low bits differ between runs.  Sum a sorted "
        "sequence or use math.fsum (order-independent)."
    )

    def __init__(self, ctx: LintContext):
        Rule.__init__(self, ctx)
        _SetTracker.__init__(self, ctx)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "sum" and node.args:
            arg = node.args[0]
            unordered = self.is_set_expr(arg) or (
                isinstance(arg, ast.GeneratorExp)
                and any(self.is_set_expr(g.iter) for g in arg.generators)
            )
            if unordered:
                self.report(node, "sum() over a set accumulates floats in "
                                  "hash order — sum(sorted(...)) or math.fsum")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# ACT-FOREIGN-STATE
# ----------------------------------------------------------------------
_RUNTIME_INTERNALS = frozenset({"activations", "silos", "directory", "storage"})


@register
class ForeignStateRule(Rule):
    name = "ACT-FOREIGN-STATE"
    severity = Severity.ERROR
    description = "actor handler touching another activation's state"
    rationale = (
        "The single-threaded-per-activation turn model (PAPER §2) only "
        "holds if a handler mutates nothing but self; reaching into the "
        "runtime's activation tables or writing through a passed-in "
        "reference races with that actor's own turns."
    )

    def run(self):
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_actor_class(node):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_method(item)
        return self.findings

    def _check_method(self, method) -> None:
        params = {
            a.arg for a in list(method.args.args) + list(method.args.kwonlyargs)
        } - {"self"}
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute) and node.attr in _RUNTIME_INTERNALS:
                self.report(node, f"handler reaches into runtime internals "
                                  f"(.{node.attr}) — actors may only touch "
                                  "their own state")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        self.report(node, f"handler writes "
                                          f"{target.value.id}.{target.attr} — "
                                          "state of another activation; send "
                                          "it a message instead")


# ----------------------------------------------------------------------
# ACT-BLOCKING-IO
# ----------------------------------------------------------------------
_BLOCKING_CALLS = {"time.sleep", "open", "input", "os.system"}
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.request.", "requests.",
                      "http.client.")
_STAGE_MODULE_DIRS = ("seda", "actor", "sim", "core", "workloads", "faults")


@register
class BlockingIoRule(Rule):
    name = "ACT-BLOCKING-IO"
    severity = Severity.ERROR
    description = "blocking I/O inside stage/actor callback code"
    rationale = (
        "SEDA stage callbacks run on simulated threads; a real blocking "
        "call stalls the whole event loop and breaks the compute/wait "
        "accounting the §5 thread-allocation model depends on.  Blocking "
        "work must be modelled as WAIT cost, not performed."
    )

    def run(self):
        self._imports = _ImportTracker(self.ctx.tree)
        self._restricted_module = self.ctx.in_tree(*_STAGE_MODULE_DIRS)
        self._actor_depth = 0
        return super().run()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        actor = _is_actor_class(node)
        if actor:
            self._actor_depth += 1
        self.generic_visit(node)
        if actor:
            self._actor_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._restricted_module or self._actor_depth:
            resolved = self._imports.resolve(node.func)
            if resolved is not None and (
                resolved in _BLOCKING_CALLS
                or resolved.startswith(_BLOCKING_PREFIXES)
            ):
                self.report(node, f"blocking call {resolved}() in stage/actor "
                                  "code — model it as WAIT cost instead")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# ACT-DIRECT-SEND
# ----------------------------------------------------------------------
@register
class DirectSendRule(Rule):
    name = "ACT-DIRECT-SEND"
    severity = Severity.ERROR
    description = "direct method invocation on an ActorRef"
    rationale = (
        "Location transparency (PAPER §2) requires every interaction to go "
        "through the runtime: yield Call(ref, ...) / Tell(ref, ...).  A "
        "direct method call bypasses queues, reentrancy control, and "
        "migration, and silently runs on the caller's silo."
    )

    _REF_FACTORIES = ("ActorRef", "self_ref")

    def run(self):
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_actor_class(node):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_method(item)
        return self.findings

    def _refs_in(self, method) -> set[str]:
        refs: set[str] = set()
        for arg in list(method.args.args) + list(method.args.kwonlyargs):
            ann = arg.annotation
            if ann is not None:
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    name = ann.value
                else:
                    name = _attr_chain(ann) or ""
                if name.split(".")[-1].split("[")[0] == "ActorRef":
                    refs.add(arg.arg)
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func = _attr_chain(node.value.func) or ""
                if func.split(".")[-1] in self._REF_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            refs.add(target.id)
        return refs

    def _check_method(self, method) -> None:
        refs = self._refs_in(method)
        if not refs:
            return
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in refs
                and node.func.attr not in ("self_ref",)
            ):
                self.report(node, f"direct call "
                                  f"{node.func.value.id}.{node.func.attr}() on "
                                  "an ActorRef — yield Call/Tell through the "
                                  "runtime instead")


# ----------------------------------------------------------------------
# API-DEPRECATED
# ----------------------------------------------------------------------
_DEPRECATED_KWARGS = {
    "ClusterConfig": {"call_timeout", "max_receiver_queue"},
    "ActOp": {"partitioning", "thread_allocation"},
    "Stage": {"tracer"},
}


@register
class DeprecatedApiRule(Rule):
    name = "API-DEPRECATED"
    severity = Severity.WARNING
    description = "internal use of PR-3 deprecated flat kwargs"
    rationale = (
        "The flat kwargs were shimmed with DeprecationWarnings in PR 3; "
        "internal code keeping them alive prevents ever removing the shims. "
        "Use build_cluster's layered configs (ResilienceConfig, ActOpConfig)."
    )

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is not None:
            short = chain.split(".")[-1]
            banned = _DEPRECATED_KWARGS.get(short)
            if banned:
                for kw in node.keywords:
                    if kw.arg in banned:
                        self.report(node, f"{short}({kw.arg}=...) is a "
                                          "deprecated flat kwarg — use the "
                                          "layered build_cluster config")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "tracer"
                and not (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                )
            ):
                self.report(node, "assigning .tracer uses the deprecated "
                                  "single-callback shim — append to "
                                  ".observers instead")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# API-EXPORT-ALL
# ----------------------------------------------------------------------
@register
class ExportConsistencyRule(Rule):
    name = "API-EXPORT-ALL"
    severity = Severity.ERROR
    description = "__all__ names that are not defined in the module"
    rationale = (
        "A stale __all__ silently breaks `from repro import *` and the "
        "documented public surface; every exported name must be bound at "
        "module level (def/class/assignment/import)."
    )

    def run(self):
        tree = self.ctx.tree
        # PEP 562: a module-level __getattr__ makes exports dynamic; the
        # import-time consistency test covers those instead.
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__":
                return self.findings
        exported: list[tuple[str, ast.AST]] = []
        star_import = False
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and any(
                a.name == "*" for a in node.names
            ):
                star_import = True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            for elt in node.value.elts:
                                if isinstance(elt, ast.Constant) and isinstance(
                                    elt.value, str
                                ):
                                    exported.append((elt.value, elt))
        if not exported or star_import:
            return self.findings
        bound = self._module_level_names(tree)
        for name, node in exported:
            if name not in bound:
                self.report(node, f"__all__ exports {name!r} but the module "
                                  "never defines or imports it")
        return self.findings

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        bound: set[str] = set()

        def collect(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    bound.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                bound.add(sub.id)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(stmt.target, ast.Name):
                        bound.add(stmt.target.id)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(stmt, ast.If):
                    collect(stmt.body)
                    collect(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    collect(stmt.body)
                    collect(stmt.orelse)
                    collect(stmt.finalbody)
                    for handler in stmt.handlers:
                        collect(handler.body)

        collect(tree.body)
        return bound


# ----------------------------------------------------------------------
# WAIVER-JUSTIFY (linter-level: checks the waivers themselves)
# ----------------------------------------------------------------------
@register
class WaiverJustificationRule(Rule):
    name = WAIVER_JUSTIFY
    severity = Severity.ERROR
    description = "waiver comment without a justification"
    rationale = (
        "A waiver is an argument, not an off switch: without '-- why' text "
        "the exemption cannot be reviewed, so it is rejected and the "
        "underlying finding stays live."
    )

    def run(self):
        for waiver in parse_waivers(self.ctx.source):
            if not waiver.justification:
                self.findings.append(
                    Finding(
                        rule=self.name,
                        severity=self.severity,
                        path=self.ctx.path,
                        line=waiver.line,
                        message="waiver lacks '-- justification' text; it "
                                "suppresses nothing until one is added",
                    )
                )
        return self.findings
