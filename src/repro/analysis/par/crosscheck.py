"""Static ⊇ dynamic cross-check for the PAR window discipline.

Third instance of the house contract (after ``--graph-check`` and
``--xb-check``): the static analysis must over-approximate anything a
real run observes.  Here the dynamic side is the window shadow
(:mod:`.shadow`) riding two seeded serial slices — the Halo workload
and the Stageflow pipeline — with the window width set to the *same*
conservative floor :func:`..par.lookahead.min_model_latency` computes
for each run's live network parameters.  Every recorded
:class:`~repro.analysis.sanitizer.WindowEvent` is a cross-silo delivery
the sharded engine's sealed windows could not accept.

Coverage is *config-level*, not site-level: a window event carries silo
ids, not a sender class/method, and same-window arrival is a property
of the network configuration (its latency floor), not of one call
site.  So the events of a run are covered iff the static pass reports
at least one ``PAR-ZERO-LOOKAHEAD`` finding against the driven sources
— on a tree whose configs all have positive floors, the check demands
*zero* window events outright.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..coverage import crosscheck_presence, read_sources
from ..sanitizer import Sanitizer
from .lookahead import min_model_latency
from .rules import PAR_ZERO_LOOKAHEAD
from .shadow import WindowShadow

__all__ = ["crosscheck_window_events", "crosscheck_windows",
           "format_par_crosscheck"]


def crosscheck_window_events(findings, events: Sequence) -> dict:
    """Config-level coverage for window events (see module docstring)."""
    return crosscheck_presence(findings, events, PAR_ZERO_LOOKAHEAD)


def _drive_halo(requests: int = 2_000, seed: int = 5, players: int = 200,
                num_servers: int = 3) -> Tuple[list, dict]:
    """Seeded Halo slice with the shadow armed; same slice shape as the
    flow graph check so the two dynamic validators agree on workload."""
    from ...bench.harness import HaloExperiment

    san = Sanitizer()
    exp = HaloExperiment(players=players, num_servers=num_servers, seed=seed)
    rt = exp.runtime
    window = min_model_latency(rt.network.base_latency, rt.network.jitter)
    shadow = WindowShadow(window, san).attach(rt.network)
    exp.workload.start()
    exp.cluster.start()
    horizon = 0.0
    while rt.requests_completed < requests and horizon < 120.0:
        horizon += 1.0
        rt.run(until=horizon)
    meta = shadow.to_dict()
    meta.update({
        "slice": "halo",
        "requests_completed": rt.requests_completed,
        "horizon_s": horizon,
        "players": players,
        "num_servers": num_servers,
        "seed": seed,
    })
    return list(san.window_events), meta


def _drive_stageflow(requests: int = 40, seed: int = 7) -> Tuple[list, dict]:
    """Seeded Stageflow slice on the serial engine with the shadow
    armed; same pipeline shape as the backend-parity suite."""
    from ... import ClusterConfig, build_cluster
    from ...workloads.stageflow import (
        StageSpec,
        StageflowConfig,
        StageflowWorkload,
    )

    san = Sanitizer()
    cluster = build_cluster(ClusterConfig(num_servers=4, seed=seed))
    with cluster:
        cluster.start()
        rt = cluster.runtime
        window = min_model_latency(rt.network.base_latency,
                                   rt.network.jitter)
        shadow = WindowShadow(window, san).attach(rt.network)
        workload = StageflowWorkload(rt, StageflowConfig(
            stages=(StageSpec("route", compute=50e-6, replicas=2),
                    StageSpec("enrich", compute=100e-6,
                              heavy_compute=200e-6, replicas=3),
                    StageSpec("transform", compute=80e-6, replicas=2)),
            policy="round_robin",
            pipelines=2,
            router_shards=2,
            report_period=None,
            heavy_fraction=0.3,
        ))
        workload.start(arrivals=False)
        workload.drive(requests)
        cluster.run()
        meta = shadow.to_dict()
        meta.update({
            "slice": "stageflow",
            "requests": requests,
            "completed": workload.completed,
            "num_servers": 4,
            "seed": seed,
        })
    return list(san.window_events), meta


def crosscheck_windows(paths: Sequence[str] = ("src/repro",),
                       base: str = ".",
                       requests: int = 2_000,
                       seed: int = 5) -> dict:
    """The CI cross-check: drive the seeded Halo and Stageflow slices
    with the window shadow armed, statically analyze ``paths``, and
    verify static ⊇ dynamic."""
    from . import analyze_par

    sources = read_sources(paths, base)
    _index, _graph, findings = analyze_par(sources)

    events: List = []
    slices: List[dict] = []
    for run_events, meta in (_drive_halo(requests=requests, seed=seed),
                             _drive_stageflow()):
        events.extend(run_events)
        slices.append(meta)
    report = crosscheck_window_events(findings, events)
    report["slices"] = slices
    report["static_findings"] = len(findings)
    report["zero_lookahead_findings"] = sum(
        1 for f in findings if f.rule == PAR_ZERO_LOOKAHEAD)
    report["files_analyzed"] = len(sources)
    return report


def format_par_crosscheck(report: dict) -> str:
    slices = report.get("slices", [])
    lines = [
        f"par crosscheck: {len(report.get('dynamic_events', []))} window "
        f"event(s) over {len(slices)} slice(s), "
        f"{report.get('static_findings', 0)} static finding(s)",
    ]
    for meta in slices:
        lines.append(
            f"  {meta.get('slice', '?')}: window {meta.get('window', 0):.3g}s, "
            f"{meta.get('cross_silo', 0)} cross-silo of "
            f"{meta.get('deliveries', 0)} deliveries, "
            f"{meta.get('window_events', 0)} window event(s)")
    for entry in report.get("uncovered", []):
        lines.append(
            f"  UNCOVERED window event silo {entry['src']} -> "
            f"{entry['dst']} at t={entry['t_send']:.6f} "
            f"(latency {entry['latency']:.3g}s < window "
            f"{entry['window']:.3g}s) — no static "
            f"{entry['expected_rule']} finding explains it")
    lines.append("static ⊇ dynamic: " + ("OK" if report.get("ok") else "FAIL"))
    return "\n".join(lines)
