"""Lookahead inference: minimum cross-silo delivery latency.

Conservative time-window synchronization (the sharded engine planned as
ROADMAP item 1) steps every silo through windows of width ``W`` and
exchanges messages only at window barriers.  That is sound exactly when
every cross-silo message sent inside window ``k`` arrives in window
``k+1`` or later — i.e. when ``W`` is at most the *minimum* delivery
latency the network can ever produce (the classic PDES lookahead).

This module infers that minimum statically.  The network model
(:class:`repro.sim.network.Network`) draws ``base * lognormvariate(0,
jitter)``, whose lower tail is unbounded — no positive window is sound
against an arbitrarily lucky draw.  We therefore report a *4-sigma
conservative floor*: ``base * exp(-SIGMAS * jitter)``, below which a
draw lands with probability ~3.2e-5 per message.  The report says so
explicitly (``sigmas``), and the sharded engine must still buffer the
rare straggler; a *zero* floor (``base == 0``) is unconditionally
unsound and is what ``PAR-ZERO-LOOKAHEAD`` fires on.

Discovery is lexical in the house style: every ``ClusterConfig(...)``
and ``Network(...)`` construction in the tree is a network model; its
``network_latency`` / ``time_scale`` / ``base_latency`` / ``jitter``
arguments are resolved to numeric constants where possible (module
constants and literal arithmetic), otherwise the model is reported
``unresolved`` with a null floor.  Per interaction-graph edge the
lookahead is scoped: models discovered in the modules the edge's call
sites live in win over the tree-wide minimum, which wins over the
``ClusterConfig`` defaults.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..flow.index import ModuleInfo, ProjectIndex, _calls_with_context
from ..rules import _attr_chain

__all__ = ["LOOKAHEAD_SIGMAS", "DEFAULT_MIN_LATENCY", "NetworkModel",
           "discover_models", "min_model_latency",
           "compute_edge_lookaheads", "lookahead_report"]

#: How many lognormal sigmas below the median the conservative floor
#: sits.  P(Z < -4) ~= 3.2e-5 per delivery draw.
LOOKAHEAD_SIGMAS = 4.0

#: ``ClusterConfig`` network defaults, mirrored here so the analysis
#: agrees with :class:`repro.actor.runtime.ClusterConfig` without
#: importing the runtime.
_DEFAULT_BASE = 0.0005
_DEFAULT_JITTER = 0.1
_DEFAULT_TIME_SCALE = 1.0


@dataclass(frozen=True)
class NetworkModel:
    """One statically discovered network configuration."""

    path: str
    line: int
    kind: str                    # "ClusterConfig" | "Network"
    base: Optional[float]        # effective base latency (None: unresolved)
    jitter: Optional[float]
    min_latency: Optional[float]  # conservative floor (None: unresolved)

    def to_dict(self) -> dict:
        return {
            "path": self.path, "line": self.line, "kind": self.kind,
            "base": self.base, "jitter": self.jitter,
            "min_latency": self.min_latency,
        }


def min_model_latency(base: float, jitter: float,
                      sigmas: float = LOOKAHEAD_SIGMAS) -> float:
    """Conservative floor of the latency distribution.

    Exact for ``jitter <= 0`` (the draw is ``base`` itself); a
    ``sigmas``-sigma lognormal quantile otherwise.
    """
    if base <= 0:
        return 0.0
    if jitter <= 0:
        return base
    return base * math.exp(-sigmas * jitter)


DEFAULT_MIN_LATENCY = min_model_latency(_DEFAULT_BASE, _DEFAULT_JITTER)


def _literal_num(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_num(node.operand)
        return None if inner is None else -inner
    return None


def _numeric_constants(mod: ModuleInfo) -> Dict[str, float]:
    """Module-level ``NAME = <number>`` assignments (the index keeps
    only string constants; latency configs are numeric)."""
    out: Dict[str, float] = {}
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            value = _literal_num(stmt.value)
            if value is not None:
                out[stmt.targets[0].id] = value
    return out


def _resolve_num(node: ast.AST, consts: Mapping[str, float],
                 ) -> Optional[float]:
    """Resolve an argument expression to a number: literals, module
    constants, and literal arithmetic over both.  ``None`` when the
    value depends on runtime state (the model is then *unresolved*,
    never guessed)."""
    value = _literal_num(node)
    if value is not None:
        return value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
        left = _resolve_num(node.left, consts)
        right = _resolve_num(node.right, consts)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if right == 0:
            return None
        return left / right
    return None


def _keyword_args(call: ast.Call) -> Dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


def _model_from_call(call: ast.Call, kind: str,
                     consts: Mapping[str, float], path: str,
                     ) -> NetworkModel:
    kwargs = _keyword_args(call)
    if kind == "ClusterConfig":
        specs = [("network_latency", _DEFAULT_BASE, None),
                 ("time_scale", _DEFAULT_TIME_SCALE, None),
                 ("network_jitter", _DEFAULT_JITTER, None)]
    else:                        # Network(sim, rng, base_latency, jitter)
        specs = [("base_latency", _DEFAULT_BASE, 2),
                 ("jitter", _DEFAULT_JITTER, 3)]
    resolved: Dict[str, Optional[float]] = {}
    for name, default, pos in specs:
        node = kwargs.get(name)
        if node is None and pos is not None and len(call.args) > pos:
            node = call.args[pos]
        resolved[name] = default if node is None else _resolve_num(node,
                                                                   consts)
    if kind == "ClusterConfig":
        base = jitter = None
        if resolved["network_latency"] is not None \
                and resolved["time_scale"] is not None:
            base = resolved["network_latency"] * resolved["time_scale"]
        jitter = resolved["network_jitter"]
    else:
        base, jitter = resolved["base_latency"], resolved["jitter"]
    floor = None
    if base is not None and jitter is not None:
        floor = min_model_latency(base, jitter)
    return NetworkModel(path=path, line=call.lineno, kind=kind,
                        base=base, jitter=jitter, min_latency=floor)


def discover_models(index: ProjectIndex) -> List[NetworkModel]:
    """Every ``ClusterConfig``/``Network`` construction in the tree, in
    deterministic (path, line) order.  Matching is by last-name, like
    the provenance evaluator, so fixture stand-ins count too."""
    models: List[NetworkModel] = []
    for path in sorted(index.modules):
        mod = index.modules[path]
        consts = _numeric_constants(mod)
        for _cls, _fn, call in _calls_with_context(mod.tree, mod):
            chain = _attr_chain(call.func)
            if chain is None:
                continue
            last = chain.split(".")[-1]
            if last not in ("ClusterConfig", "Network"):
                continue
            models.append(_model_from_call(call, last, consts, path))
    models.sort(key=lambda m: (m.path, m.line, m.kind))
    return models


def compute_edge_lookaheads(
        pairs: Sequence[Tuple[str, str]],
        pair_paths: Mapping[Tuple[str, str], Iterable[str]],
        models: Sequence[NetworkModel],
        default_min: float = DEFAULT_MIN_LATENCY,
) -> Dict[Tuple[str, str], Tuple[float, str]]:
    """Per-edge lookahead: ``pair -> (lookahead, scope)``.

    Scoping, most specific first: the minimum floor of resolved models
    in the modules the edge's sites live in (``"module"``), else the
    tree-wide minimum over all resolved models (``"global"``), else the
    ``ClusterConfig`` defaults (``"default"``).

    This is the pure core the monotonicity property pins: removing a
    pair or raising any model's floor never *decreases* a reported
    lookahead (min-composition over a fixed scope).
    """
    by_path: Dict[str, float] = {}
    floors: List[float] = []
    for model in models:
        if model.min_latency is None:
            continue
        floors.append(model.min_latency)
        prev = by_path.get(model.path)
        if prev is None or model.min_latency < prev:
            by_path[model.path] = model.min_latency
    global_min = min(floors) if floors else None
    out: Dict[Tuple[str, str], Tuple[float, str]] = {}
    for pair in pairs:
        scoped = [by_path[p] for p in sorted(set(pair_paths.get(pair, ())))
                  if p in by_path]
        if scoped:
            out[pair] = (min(scoped), "module")
        elif global_min is not None:
            out[pair] = (global_min, "global")
        else:
            out[pair] = (default_min, "default")
    return out


def lookahead_report(index: ProjectIndex, graph) -> dict:
    """The machine-readable lookahead report (``repro lint
    --par-graph``): discovered models, per-edge lookaheads, and the
    recommended synchronization window (the minimum edge lookahead).
    Deterministic: pure arithmetic over the sorted index.
    """
    models = discover_models(index)
    resolved = [m for m in models if m.min_latency is not None]
    weights = graph.type_edge_weights()
    pair_paths: Dict[Tuple[str, str], set] = {}
    for edge in graph.actor_edges():
        pair = tuple(sorted((edge.caller_type, edge.target_type)))
        pair_paths.setdefault(pair, set()).add(edge.path)
    pairs = sorted(weights)
    lookaheads = compute_edge_lookaheads(pairs, pair_paths, models)
    floors = [la for la, _scope in lookaheads.values()]
    if floors:
        window = min(floors)
    elif resolved:
        window = min(m.min_latency for m in resolved)
    else:
        window = DEFAULT_MIN_LATENCY
    return {
        "schema": 1,
        "format": "par/lookahead",
        "sigmas": LOOKAHEAD_SIGMAS,
        "default_min_latency": DEFAULT_MIN_LATENCY,
        "models": [m.to_dict() for m in models],
        "resolved_models": len(resolved),
        "unresolved_models": len(models) - len(resolved),
        "global_min_latency": (min(m.min_latency for m in resolved)
                               if resolved else None),
        "edges": [
            {
                "pair": list(pair),
                "weight": weights[pair],
                "lookahead": lookaheads[pair][0],
                "scope": lookaheads[pair][1],
            }
            for pair in pairs
        ],
        "window": window,
    }
