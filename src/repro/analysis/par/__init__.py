"""Parallel-sharding readiness analysis (the PAR rule family).

Static side: lookahead inference over every discovered network model
(:mod:`.lookahead`) plus five sharding-readiness rules (:mod:`.rules`)
over the flow pass's project index *and* interaction graph, emitting
``PAR-*`` findings through the standard lint pipeline.  The lookahead
report (``repro lint --par-graph``) is the synchronization-window
input the future sharded engine consumes.

Dynamic side: the window shadow (:mod:`.shadow`) partitions the serial
event stream into per-silo conservative windows and records every
same-window cross-silo delivery on the sanitizer;
:mod:`.crosscheck` verifies static ⊇ dynamic on seeded Halo and
Stageflow slices, exactly as ``--graph-check`` and ``--xb-check`` do.

Entry point for the linter: :func:`analyze_par`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..findings import Finding, Severity
from ..flow.index import ProjectIndex, build_index
from ..flow.interaction import InteractionGraph, build_graph
from .crosscheck import (
    crosscheck_window_events,
    crosscheck_windows,
    format_par_crosscheck,
)
from .lookahead import (
    compute_edge_lookaheads,
    discover_models,
    lookahead_report,
    min_model_latency,
)
from .rules import PARRule, all_par_rules, run_par_rules
from .shadow import WindowShadow

__all__ = [
    "PARRule",
    "WindowShadow",
    "all_par_rules",
    "analyze_par",
    "compute_edge_lookaheads",
    "crosscheck_window_events",
    "crosscheck_windows",
    "discover_models",
    "format_par_crosscheck",
    "lookahead_report",
    "min_model_latency",
    "run_par_rules",
]


def analyze_par(files: Sequence[Tuple[str, str]],
                ) -> Tuple[ProjectIndex, InteractionGraph, List[Finding]]:
    """Index ``(relpath, source)`` pairs, build the interaction graph,
    and run every PAR rule.  Parse failures become findings (the
    per-file pass reports them too; the linter deduplicates)."""
    index = build_index(files)
    graph = build_graph(index)
    findings = run_par_rules(index, graph)
    for path, line, msg in index.parse_failures:
        findings.append(Finding(
            rule="PARSE-ERROR", severity=Severity.ERROR,
            path=path, line=line, message=f"file does not parse: {msg}"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return index, graph, findings
