"""The window-barrier shadow: dynamic validation of lookahead windows.

The sharded engine (ROADMAP item 1) will step every silo through
conservative windows of width ``W`` and seal each window at the
barrier; a cross-silo message sent inside window ``k`` must arrive in
window ``k+1`` or later, or the receiving silo may already have stepped
past its arrival time.  The serial engine can *shadow* that discipline
today: partition the one serial event stream into the same per-silo
windows and record every cross-silo delivery that lands inside the
window it was sent in — exactly the arrivals the sharded engine's
sealed windows could not accept.

:class:`WindowShadow` hangs off :attr:`repro.sim.network.Network.shadow`
(mirroring the fault hook) and is pure recording: it never draws from
an RNG and never schedules an event, so the simulation digest is
unchanged even while armed.  Events land on the sanitizer as
:class:`~repro.analysis.sanitizer.WindowEvent`; ``repro lint
--par-check`` (:mod:`.crosscheck`) then enforces static ⊇ dynamic.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sanitizer import Sanitizer, WindowEvent

__all__ = ["WindowShadow"]


class WindowShadow:
    """Per-silo conservative window accounting over the serial stream.

    Args:
        window: window width ``W`` in simulated seconds (> 0); use the
            same conservative floor :func:`..par.lookahead.min_model_latency`
            reports for the live network's parameters, so the static
            report and the dynamic check agree on what "safe" means.
        sanitizer: the armed sanitizer receiving
            :class:`WindowEvent`\\ s.
    """

    def __init__(self, window: float, sanitizer: Sanitizer):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = window
        self.sanitizer = sanitizer
        self.deliveries = 0          # every delivery seen, local included
        self.cross_silo = 0          # deliveries with src != dst silos
        self.min_latency_seen: Optional[float] = None

    def observe(self, src: Optional[int], dst: Optional[int],
                t_send: float, latency: float) -> None:
        """One network delivery (called by ``Network.deliver``).

        Pure recording: window arithmetic plus an append on violation.
        Client-side endpoints (``None``) and same-silo deliveries are
        outside the window discipline — local work never crosses a
        barrier.
        """
        self.deliveries += 1
        if src is None or dst is None or src == dst:
            return
        self.cross_silo += 1
        if self.min_latency_seen is None or latency < self.min_latency_seen:
            self.min_latency_seen = latency
        k_send = math.floor(t_send / self.window)
        k_arrive = math.floor((t_send + latency) / self.window)
        if k_arrive <= k_send:
            self.sanitizer.record_window_event(WindowEvent(
                src=src, dst=dst, t_send=t_send, latency=latency,
                window=self.window, window_index=k_send))

    # -- attachment ----------------------------------------------------

    def attach(self, network) -> "WindowShadow":
        network.shadow = self
        return self

    @staticmethod
    def detach(network) -> None:
        network.shadow = None

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "deliveries": self.deliveries,
            "cross_silo": self.cross_silo,
            "min_latency_seen": self.min_latency_seen,
            "window_events": len(self.sanitizer.window_events),
        }
