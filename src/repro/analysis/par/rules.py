"""The PAR rule family: parallel-sharding readiness checks.

ROADMAP item 1 shards the serial engine into silo processes stepped in
conservative lookahead windows.  Five things break that silently — each
is one rule here, each certifying one invariant the sharded engine
assumes (the DESIGN.md PAR table maps them out):

* **Window soundness** needs a positive minimum delivery latency; a
  zero-latency network config makes every window width unsound
  (``PAR-ZERO-LOOKAHEAD``).
* **Process isolation** forks module globals per silo; mutable module
  state an actor touches diverges between the serial and sharded runs
  without an error (``PAR-GLOBAL-MUTABLE``).
* **Partition freedom** lets the partitioner host any two actor types
  on different silos; a mutable object aliased into a message to a
  *different* type is shared memory today and two diverging copies
  after sharding (``PAR-CROSS-SILO-CONFLICT``).
* **Barrier merging** folds per-silo recorder state deterministically
  at every window barrier, which needs ``merge()`` on every metric
  type on the silo hot path (``PAR-NONMERGEABLE-METRIC``).
* **State migration** moves activations between silo processes through
  pickle; actor state the XB lattice proves unpicklable pins its silo
  forever (``PAR-UNPORTABLE-SILO-STATE``).

The rules run over the PR-5 project index *and* interaction graph and
report through the standard Finding/waiver pipeline, so
``# repro: waive[PAR-...] -- reason`` works unchanged.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, List, Optional, Set, Tuple, Type

from ..findings import Finding, Severity
from ..flow.index import ClassInfo, ModuleInfo, ProjectIndex
from ..rules import _attr_chain
from ..xbackend.escape import (
    _LOCAL_MUTATORS,
    AliasFacts,
    is_mutable_initializer,
    mutable_fields,
    send_sites,
)
from ..xbackend.lattice import MethodPickleEnv, classify
from ..xbackend.rules import AliasedMutableRule, _sender_bodies, _site_desc
from .lookahead import discover_models

__all__ = ["PARRule", "all_par_rules", "run_par_rules",
           "PAR_ZERO_LOOKAHEAD", "PAR_GLOBAL_MUTABLE",
           "PAR_CROSS_SILO_CONFLICT", "PAR_NONMERGEABLE_METRIC",
           "PAR_UNPORTABLE_SILO_STATE"]

PAR_ZERO_LOOKAHEAD = "PAR-ZERO-LOOKAHEAD"
PAR_GLOBAL_MUTABLE = "PAR-GLOBAL-MUTABLE"
PAR_CROSS_SILO_CONFLICT = "PAR-CROSS-SILO-CONFLICT"
PAR_NONMERGEABLE_METRIC = "PAR-NONMERGEABLE-METRIC"
PAR_UNPORTABLE_SILO_STATE = "PAR-UNPORTABLE-SILO-STATE"

#: Instance methods that mark a class as a metric/recorder on the silo
#: hot path (the window barrier folds such state with ``merge()``).
_METRIC_METHODS = ("observe", "offer", "record")

_PAR_REGISTRY: List[Type["PARRule"]] = []


class PARRule:
    """One project-wide sharding-readiness rule over index + graph."""

    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    description: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(rule=self.name, severity=self.severity,
                       path=path, line=line, message=message)


def _register(cls: Type[PARRule]) -> Type[PARRule]:
    _PAR_REGISTRY.append(cls)
    return cls


def all_par_rules() -> Tuple[Type[PARRule], ...]:
    return tuple(_PAR_REGISTRY)


@_register
class ZeroLookaheadRule(PARRule):
    name = PAR_ZERO_LOOKAHEAD
    description = ("network configuration with a provably zero minimum "
                   "delivery latency (no conservative window is sound)")
    rationale = ("Conservative window synchronization is sound only when "
                 "the window width is at most the minimum cross-silo "
                 "delivery latency (the lookahead).  A config that proves "
                 "the minimum is zero — base latency 0, or a zero time "
                 "scale — admits same-instant cross-silo arrivals, so "
                 "every window width is unsound and silos can never be "
                 "stepped in parallel.  Give the network a positive base "
                 "latency.")

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        findings: List[Finding] = []
        for model in discover_models(index):
            if model.min_latency is None or model.min_latency > 0:
                continue
            findings.append(self.finding(
                model.path, model.line,
                f"{model.kind}(...) resolves to a zero minimum delivery "
                f"latency (base={model.base!r}): conservative window "
                f"synchronization needs a positive lookahead, so with "
                f"this config a cross-silo message can arrive in the "
                f"same instant it was sent and no window width is sound "
                f"— the program cannot be sharded across silos"))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


def _module_bodies(mod: ModuleInfo) -> Iterator[
        Tuple[Optional[ClassInfo], str, ast.AST]]:
    """Every function body in one module with its owner label."""
    for cls_name in sorted(mod.classes):
        cls = mod.classes[cls_name]
        for mname in sorted(cls.methods):
            node = cls.methods[mname].node
            if node is not None:
                yield cls, f"{cls_name}.{mname}", node
    for fname in sorted(mod.functions):
        yield None, fname, mod.functions[fname]


def _global_mutations(fn: ast.AST, names: Set[str]) -> Dict[str, int]:
    """``name -> first line`` where ``fn`` mutates a module-level name:
    a container-mutator call, item/augmented assignment, or a rebind
    under a ``global`` declaration."""
    declared: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared.update(n for n in node.names if n in names)
    out: Dict[str, int] = {}

    def hit(name: str, line: int) -> None:
        if name in names and (name not in out or line < out[name]):
            out[name] = line

    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is not None:
                parts = chain.split(".")
                if len(parts) == 2 and parts[1] in _LOCAL_MUTATORS:
                    hit(parts[0], node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    hit(target.value.id, node.lineno)
                elif isinstance(target, ast.Name) and target.id in declared:
                    hit(target.id, node.lineno)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name):
                hit(target.id, node.lineno)
            elif isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name):
                hit(target.value.id, node.lineno)
    return out


@_register
class GlobalMutableRule(PARRule):
    name = PAR_GLOBAL_MUTABLE
    description = ("module-level mutable state mutated somewhere and "
                   "reachable from an actor method")
    rationale = ("Sharding runs each silo in its own process, so module "
                 "globals are *forked*, not shared: a mutable module "
                 "object an actor reads while any code mutates it is one "
                 "shared object in the serial run and N diverging copies "
                 "in the sharded run — with no error, just different "
                 "answers.  Move the state into an actor or pass it "
                 "explicitly through messages.")

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(index.modules):
            mod = index.modules[path]
            assigned: Dict[str, int] = {}
            for stmt in mod.tree.body:
                name = value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name):
                    name, value = stmt.targets[0].id, stmt.value
                elif isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name) \
                        and stmt.value is not None:
                    name, value = stmt.target.id, stmt.value
                if name is not None and name not in assigned \
                        and is_mutable_initializer(value):
                    assigned[name] = stmt.lineno
            if not assigned:
                continue
            names = set(assigned)
            mutated: Dict[str, Tuple[str, int]] = {}
            actor_readers: Dict[str, str] = {}
            for cls, owner, fn in _module_bodies(mod):
                for name, line in sorted(_global_mutations(fn, names).items()):
                    if name not in mutated:
                        mutated[name] = (owner, line)
                if cls is not None and cls.is_actor:
                    for node in ast.walk(fn):
                        if isinstance(node, ast.Name) and node.id in names \
                                and node.id not in actor_readers:
                            actor_readers[node.id] = owner
            for name in sorted(assigned):
                if name not in mutated or name not in actor_readers:
                    continue
                owner, line = mutated[name]
                findings.append(self.finding(
                    mod.path, assigned[name],
                    f"module-level mutable {name} is mutated by {owner} "
                    f"(line {line}) and reachable from actor method "
                    f"{actor_readers[name]}: silo processes fork module "
                    f"globals, so the serial run shares one object while "
                    f"the sharded run silently diverges per silo — move "
                    f"the state into an actor or pass it in messages"))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


@_register
class CrossSiloConflictRule(PARRule):
    name = PAR_CROSS_SILO_CONFLICT
    description = ("mutable object aliased into a message to a different "
                   "actor type (the partitioner may split the pair across "
                   "silos)")
    rationale = ("The partitioner is free to host any two actor *types* "
                 "on different silos.  A mutable object the sender "
                 "retains and also ships to another type is one shared "
                 "object in the serial engine but lands in a different "
                 "address space after sharding — same-instant mutable "
                 "access that the window barrier cannot serialize.  Send "
                 "an immutable snapshot (tuple(...), dict(...) copy) "
                 "instead.")

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        site_targets: Dict[Tuple[str, int], Set[str]] = {}
        for site in graph.sites:
            if site.target_types:
                key = (site.path, site.line)
                site_targets.setdefault(key, set()).update(site.target_types)
        findings: List[Finding] = []
        for mod, cls, fname, fn in _sender_bodies(index):
            if cls is None or not cls.is_actor:
                continue
            sites = send_sites(fn)
            if not sites:
                continue
            own = set(index.types_for_class(cls))
            shared = mutable_fields(cls)
            facts = AliasFacts.collect(fn)
            for site in sites:
                targets = site_targets.get((mod.path, site.line), set())
                others = sorted(targets - own)
                if not others:
                    continue
                for arg in site.payload:
                    hit = AliasedMutableRule._aliased(arg, site, shared,
                                                     facts)
                    if hit is None:
                        continue
                    findings.append(self.finding(
                        mod.path, site.line,
                        f"{cls.name}.{fname} sends {hit} to actor type(s) "
                        f"{', '.join(others)} in {_site_desc(site)}: the "
                        f"partitioner may host sender and target on "
                        f"different silos, so the alias that is shared "
                        f"memory in the serial engine becomes two "
                        f"independently mutated copies under sharding; "
                        f"send an immutable snapshot instead"))
                    break       # one finding per send site is enough
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


@_register
class NonmergeableMetricRule(PARRule):
    name = PAR_NONMERGEABLE_METRIC
    description = ("metric/recorder class on the silo hot path without a "
                   "merge() for the deterministic window barrier")
    rationale = ("At every window barrier the sharded engine folds "
                 "per-silo recorder state into one deterministic global "
                 "view, which requires every metric type to define "
                 "merge(other).  A recorder that can only accumulate "
                 "in-process either blocks the barrier or gets silently "
                 "dropped from the merged report.  Add a merge(other) "
                 "that combines two recorders' state exactly.")

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        instantiated: Set[str] = set()
        for path in sorted(index.modules):
            mod = index.modules[path]
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call):
                    chain = _attr_chain(node.func)
                    if chain is not None:
                        instantiated.add(chain.split(".")[-1])
        findings: List[Finding] = []
        for cls in index.all_classes():
            if cls.is_actor or "analysis" in cls.path.split("/"):
                continue
            hot = [m for m in _METRIC_METHODS if m in cls.methods]
            if not hot or cls.name not in instantiated:
                continue
            method, certain = index.resolve_method(cls, "merge")
            if method is not None or not certain:
                continue
            findings.append(self.finding(
                cls.path, cls.lineno,
                f"{cls.name} defines {hot[0]}() but no merge(): the "
                f"window barrier combines per-silo recorder state with "
                f"merge(other), so this metric cannot cross the barrier "
                f"and its samples would be silently dropped from the "
                f"merged report; add merge(other)"))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


@_register
class UnportableSiloStateRule(PARRule):
    name = PAR_UNPORTABLE_SILO_STATE
    description = ("actor field assigned a value the picklability "
                   "lattice proves cannot move between silo processes")
    rationale = ("Sharding moves activations between silo processes "
                 "through pickle (migration, rebalancing, restart on "
                 "another worker).  An actor field holding a proven "
                 "unpicklable value — an open file, a lambda, a live "
                 "engine handle — pins the activation to its process "
                 "forever and fails the first migration.  Prefix the "
                 "field with '_' to mark it ephemeral (rebuilt on "
                 "activation) or store picklable data instead.")

    def check(self, index: ProjectIndex, graph) -> List[Finding]:
        findings: List[Finding] = []
        for cls in index.actor_classes():
            mod = index.modules.get(cls.path)
            if mod is None:
                continue
            reported: Set[str] = set()
            for mname in sorted(cls.methods):
                method = cls.methods[mname]
                if method.node is None:
                    continue
                env = MethodPickleEnv(method.node, mod, cls).env
                writes = sorted(method.field_writes,
                                key=lambda w: (w.line, w.field_name))
                for write in writes:
                    if write.field_name.startswith("_") \
                            or write.field_name in reported:
                        continue
                    verdict = classify(write.value, mod, cls, env)
                    if not verdict.unpicklable:
                        continue
                    reported.add(write.field_name)
                    findings.append(self.finding(
                        cls.path, write.line,
                        f"{cls.name}.{mname} stores {verdict.reason} in "
                        f"self.{write.field_name}: silo state must "
                        f"pickle to migrate between worker processes, "
                        f"so this activation would be pinned to its "
                        f"silo and fail the first rebalance; prefix the "
                        f"field with '_' (ephemeral, rebuilt on "
                        f"activation) or store picklable data"))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


def run_par_rules(index: ProjectIndex, graph) -> List[Finding]:
    """Run every PAR rule; deterministic (path, line, rule) order."""
    findings: List[Finding] = []
    for rule_cls in all_par_rules():
        findings.extend(rule_cls().check(index, graph))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
