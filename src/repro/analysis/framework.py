"""Rule framework: registry, lint context, and the Rule base class.

Rules are :class:`ast.NodeVisitor` subclasses registered by decorator.
Each declares a stable name (``DET-SET-ITER``-style), a severity, and a
one-line rationale; the linter instantiates every registered rule per
file, feeds it the parsed module, and collects findings.  Registration
order is preserved so reports are stable run to run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import ClassVar, Iterable, Type

from .findings import Finding, Severity

__all__ = ["LintContext", "Rule", "register", "all_rules", "get_rule"]

_REGISTRY: dict[str, Type["Rule"]] = {}


@dataclass
class LintContext:
    """Everything a rule may consult about the file under analysis."""

    path: str                    # path as reported in findings (repo-relative)
    source: str
    tree: ast.Module

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Path components, for module-scoped rules (``bench`` exemptions)."""
        return tuple(self.path.replace("\\", "/").split("/"))

    def in_tree(self, *parts: str) -> bool:
        """True if any of ``parts`` appears as a path component."""
        mine = self.module_parts
        return any(p in mine for p in parts)


class Rule(ast.NodeVisitor):
    """Base class for one lint rule over one file.

    Subclasses set the class attributes and either override :meth:`run`
    or rely on the default, which visits the whole tree.  Findings are
    reported through :meth:`report`.
    """

    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    description: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def __init__(self, ctx: LintContext):
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.name,
                severity=self.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (names must be unique)."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> Iterable[Type[Rule]]:
    """Registered rules, in registration order."""
    return tuple(_REGISTRY.values())


def get_rule(name: str) -> Type[Rule]:
    return _REGISTRY[name]
