"""The analysis-version stamp.

Bump :data:`ANALYSIS_VERSION` whenever any rule's *behaviour* changes —
new rules, removed rules, changed detection logic, changed messages —
not just when rule names change.  The stamp is folded into the lint
result cache's ruleset signature (:mod:`repro.analysis.cache`), so a
stale ``.repro-lint-cache/`` can never mask findings a newer analysis
would raise: any bump invalidates every cached per-file result.

(The signature also hashes the registered rule *names* of every family,
which catches additions/renames automatically; the stamp is the manual
override for logic-only changes the name list cannot see.)
"""

from __future__ import annotations

__all__ = ["ANALYSIS_VERSION"]

#: History: "1" — per-file + FLOW rule families (PR 5).
#:          "2" — XB cross-backend portability family; signature gains
#:                this stamp plus the FLOW/XB rule-name lists.
#:          "3" — PAR parallel-sharding readiness family + lookahead
#:                inference; signature gains the PAR rule-name list and
#:                the cache gains project-level (whole-tree) entries.
ANALYSIS_VERSION = "3"
