"""Runtime race / determinism sanitizer.

Opt-in instrumentation that watches a running cluster for the dynamic
cousins of the static ``DET-*``/``ACT-*`` rules:

* **Shared-state conflicts.**  While armed, every write to (and read of)
  an actor's application state is recorded as an
  ``(owner actor_id, field, logical_time)`` access attributed to the
  code that performed it — the activation whose turn is executing, the
  SEDA stage firing a callback, or ``"engine"`` for bare simulator
  events.  Two *different* accessors touching the same (owner, field) at
  the same logical instant, at least one of them writing, is a conflict:
  the turn model promises that never happens, and when it does the
  outcome depends on same-instant event ordering.

* **RNG stream hazards.**  Substream draws advance hidden generator
  state, so a draw is a *write* to ``rng:<stream>``; two contexts
  drawing from one stream at the same instant make the variate
  assignment depend on event scheduling order.  The engine totally
  orders same-instant events by ``(time, seq)``, so these are
  deterministic today — they are reported as *hazards* (fragile to
  scheduling changes, e.g. shared ``network.jitter`` draws from both
  sender stages) rather than conflicts, and do not fail the run.

* **Set-iteration order dependence.**  :func:`detect_order_dependence`
  re-runs a probe under salted ``ActorId`` hashing; any digest change
  proves something iterated a hash-ordered container.

Everything is gated on module state that the runtime checks with one
``is not None`` test per hook — when never armed, no instance attribute
exists beyond a class-level ``None`` and the hot paths are unchanged
(the bit-identical-digest test enforces this).
"""

from __future__ import annotations

import contextlib
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "Sanitizer",
    "Conflict",
    "OrderProbe",
    "PayloadEvent",
    "WindowEvent",
    "current",
    "detect_order_dependence",
]

# The single armed sanitizer (or None).  Hooks in the engine, stages,
# silos, and the Actor base consult this — or a cached reference to it —
# only after a cheap None check, so the disarmed cost is one attribute
# load per hook site.
_ACTIVE: Optional["Sanitizer"] = None


def current() -> Optional["Sanitizer"]:
    """The armed sanitizer, or None."""
    return _ACTIVE


@dataclass(frozen=True)
class Conflict:
    """Two accessors touched one (owner, field) at one logical instant."""

    owner: Any                    # ActorId, or "rng:<stream>", or a label
    field: str
    time: float
    accesses: tuple               # ((accessor, kind), ...) in arrival order
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "owner": str(self.owner),
            "field": self.field,
            "time": self.time,
            "accesses": [list(a) for a in self.accesses],
            "note": self.note,
        }

    def render(self) -> str:
        who = ", ".join(f"{kind} by {accessor}" for accessor, kind in self.accesses)
        text = (f"conflict on {self.owner}.{self.field} "
                f"at t={self.time:.6f}: {who}")
        return f"{text} — {self.note}" if self.note else text


@dataclass(frozen=True)
class PayloadEvent:
    """One cross-backend payload hazard observed at a real send site.

    The dynamic cousin of the static ``XB-*`` rules: the asyncio
    backend's payload probe records an event when a message payload is
    aliased by the sender's own state (``kind="alias"`` — shared by
    reference inproc, copied over TCP) or fails ``pickle.dumps``
    (``kind="unpicklable"`` — cannot cross the TCP transport at all).
    The crosscheck in :mod:`repro.analysis.xbackend.crosscheck` demands
    every such event be covered by a static finding (static ⊇ dynamic).
    """

    kind: str                     # "alias" | "unpicklable"
    sender: str                   # sender class name, or "<client>"
    method: str                   # sender method (or target method)
    detail: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "sender": self.sender,
                "method": self.method, "detail": self.detail}


@dataclass(frozen=True)
class WindowEvent:
    """One cross-silo delivery landing inside an already-closed window.

    The dynamic cousin of the static ``PAR-*`` rules: the window-shadow
    mode (:class:`repro.analysis.par.WindowShadow`) partitions the
    serial event stream into per-silo conservative lookahead windows of
    width ``window`` and records an event whenever a message sent from
    one silo arrives at a *different* silo within the same window — a
    delivery a parallel sharded execution, whose silos have already
    sealed that window, could not replay.  The crosscheck in
    :mod:`repro.analysis.par.crosscheck` demands every such event be
    explained by a static PAR finding (static ⊇ dynamic).
    """

    src: Optional[int]            # sending silo id (None = client side)
    dst: Optional[int]            # receiving silo id
    t_send: float                 # virtual send time
    latency: float                # drawn delivery latency
    window: float                 # window width the shadow was armed with
    window_index: int             # window the send (and arrival) fell in

    def to_dict(self) -> dict:
        return {
            "src": self.src, "dst": self.dst,
            "t_send": self.t_send, "latency": self.latency,
            "window": self.window, "window_index": self.window_index,
        }


@dataclass(frozen=True)
class OrderProbe:
    """Result of a salted-hash order-dependence probe."""

    baseline: Any
    divergent_salts: tuple
    salts_tried: tuple

    @property
    def order_dependent(self) -> bool:
        return bool(self.divergent_salts)

    def to_dict(self) -> dict:
        return {
            "order_dependent": self.order_dependent,
            "salts_tried": list(self.salts_tried),
            "divergent_salts": list(self.divergent_salts),
        }


class _SanRandom:
    """Proxy around a substream that records each draw as a state write."""

    _DRAWS = frozenset({
        "random", "uniform", "expovariate", "gauss", "normalvariate",
        "lognormvariate", "paretovariate", "weibullvariate", "triangular",
        "betavariate", "gammavariate", "vonmisesvariate", "randint",
        "randrange", "choice", "choices", "sample", "shuffle", "getrandbits",
        "binomialvariate",
    })

    __slots__ = ("_rng", "_name", "_san")

    def __init__(self, rng, name: str, san: "Sanitizer"):
        self._rng = rng
        self._name = name
        self._san = san

    def __getattr__(self, attr: str):
        value = getattr(self._rng, attr)
        if attr in self._DRAWS:
            san = self._san
            name = self._name

            def drawing(*args, **kwargs):
                san.record_draw(name)
                return value(*args, **kwargs)

            return drawing
        return value


class Sanitizer:
    """Records state/RNG accesses and derives conflicts from them.

    Typical use::

        san = Sanitizer()
        with san.armed(cluster):
            cluster.run(until=horizon)
        report = san.report()
    """

    def __init__(self) -> None:
        self.sim = None
        # (owner, field, time) -> [(accessor, kind), ...]
        self._records: dict[tuple, list[tuple[str, str]]] = {}
        self._context: list[str] = []
        self._injected: list[Conflict] = []
        self.rng_draws: Counter = Counter()
        self.payload_events: list[PayloadEvent] = []
        self.window_events: list[WindowEvent] = []
        self.accesses = 0
        self.events_seen = 0
        self._armed = False
        self._saved_setattr = None
        self._saved_getattribute = None
        self._wired: list[tuple[Any, str]] = []

    # ------------------------------------------------------------------
    # Arming / wiring
    # ------------------------------------------------------------------
    def arm(self, cluster=None, sim=None) -> "Sanitizer":
        """Become the active sanitizer and instrument ``cluster``/``sim``.

        ``cluster`` may be a :class:`repro.cluster.Cluster` or a bare
        ``ActorRuntime``; either wires the simulator, every silo, every
        SEDA stage, and the runtime's admission path.  Arming with
        neither still intercepts actor state and new RNG streams (unit
        tests drive contexts by hand).
        """
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a sanitizer is already armed")
        _ACTIVE = self
        self._armed = True
        self._patch_actor()
        if cluster is not None or sim is not None:
            self.wire(cluster=cluster, sim=sim)
        return self

    def wire(self, cluster=None, sim=None) -> "Sanitizer":
        """Instrument an (already-armed) sanitizer into a cluster.

        Separate from :meth:`arm` so callers can arm *before* building
        the experiment — RNG streams are wrapped at creation time — and
        wire the engine/silo/stage hooks once the cluster exists.
        """
        if not self._armed:
            raise RuntimeError("wire() before arm()")
        runtime = getattr(cluster, "runtime", cluster)
        if sim is None and runtime is not None:
            sim = runtime.sim
        if sim is not None:
            self.sim = sim
            self._wire(sim)
        if runtime is not None:
            self._wire(runtime)
            for silo in runtime.silos:
                self._wire(silo)
                for stage in (silo.receiver, silo.worker,
                              silo.server_sender, silo.client_sender):
                    self._wire(stage)
        return self

    def _wire(self, obj) -> None:
        obj._san = self
        self._wired.append((obj, "_san"))

    def disarm(self) -> None:
        global _ACTIVE
        if not self._armed:
            return
        self._armed = False
        if _ACTIVE is self:
            _ACTIVE = None
        for obj, attr in self._wired:
            setattr(obj, attr, None)
        self._wired.clear()
        self._unpatch_actor()

    @contextlib.contextmanager
    def armed(self, cluster=None, sim=None):
        self.arm(cluster=cluster, sim=sim)
        try:
            yield self
        finally:
            self.disarm()

    # -- Actor state interception ---------------------------------------
    def _patch_actor(self) -> None:
        from repro.actor.actor import Actor

        self._saved_setattr = Actor.__dict__.get("__setattr__")
        self._saved_getattribute = Actor.__dict__.get("__getattribute__")

        def san_setattr(obj, name, value):
            if not name.startswith("_"):
                san = _ACTIVE
                if san is not None:
                    owner = object.__getattribute__(obj, "__dict__").get("_id")
                    if owner is not None:
                        san.record(owner, name, "write")
            object.__setattr__(obj, name, value)

        def san_getattribute(obj, name):
            value = object.__getattribute__(obj, name)
            if not name.startswith("_"):
                san = _ACTIVE
                if san is not None:
                    d = object.__getattribute__(obj, "__dict__")
                    if name in d:
                        owner = d.get("_id")
                        if owner is not None:
                            san.record(owner, name, "read")
            return value

        Actor.__setattr__ = san_setattr
        Actor.__getattribute__ = san_getattribute

    def _unpatch_actor(self) -> None:
        from repro.actor.actor import Actor

        if self._saved_setattr is None:
            with contextlib.suppress(AttributeError):
                del Actor.__setattr__
        else:
            Actor.__setattr__ = self._saved_setattr
        if self._saved_getattribute is None:
            with contextlib.suppress(AttributeError):
                del Actor.__getattribute__
        else:
            Actor.__getattribute__ = self._saved_getattribute
        self._saved_setattr = None
        self._saved_getattribute = None

    # ------------------------------------------------------------------
    # Access recording (called by the instrumented runtime)
    # ------------------------------------------------------------------
    def on_event(self) -> None:
        """Engine hook: one simulator event fired while armed."""
        self.events_seen += 1

    def push_context(self, label: str) -> None:
        """Attribute subsequent accesses to ``label`` (activation/stage)."""
        self._context.append(label)

    def pop_context(self) -> None:
        self._context.pop()

    @property
    def context(self) -> str:
        return self._context[-1] if self._context else "engine"

    def record(self, owner, field_name: str, kind: str) -> None:
        """Record one access to ``owner.field_name`` (kind: read/write)."""
        self.accesses += 1
        now = self.sim.now if self.sim is not None else 0.0
        key = (owner, field_name, now)
        entries = self._records.get(key)
        if entries is None:
            self._records[key] = entries = []
        entries.append((self.context, kind))

    def record_draw(self, stream: str) -> None:
        """An RNG draw: a write to the stream's hidden generator state."""
        self.rng_draws[stream] += 1
        self.record(f"rng:{stream}", "state", "write")

    def wrap_rng(self, name: str, rng) -> _SanRandom:
        """Called by RngRegistry at stream creation while armed."""
        return _SanRandom(rng, name, self)

    def record_payload_alias(self, sender: str, method: str,
                             detail: str = "") -> None:
        """Payload probe: a message left ``sender.method`` carrying an
        object the sender's own state still references — shared inproc,
        pickle-copied over TCP, so behaviour forks by transport."""
        self.payload_events.append(
            PayloadEvent("alias", sender, method, detail))

    def record_unpicklable_payload(self, sender: str, method: str,
                                   detail: str = "") -> None:
        """Payload probe: a message payload failed ``pickle.dumps`` —
        it can cross the inproc transport by reference but never TCP."""
        self.payload_events.append(
            PayloadEvent("unpicklable", sender, method, detail))

    def record_window_event(self, event: WindowEvent) -> None:
        """Window shadow: a cross-silo delivery landed inside the same
        conservative lookahead window it was sent in — an arrival the
        sharded engine's already-sealed windows could not accept."""
        self.window_events.append(event)

    def record_inflight_eviction(self, owner, age: float) -> None:
        """``drop_oldest`` evicted a *dispatched* request: server work is
        racing client-side abandonment — the sustained-overload livelock
        documented in ``benchmarks/test_overload_shedding.py``."""
        now = self.sim.now if self.sim is not None else 0.0
        self._injected.append(
            Conflict(
                owner=owner,
                field="admission-slot",
                time=now,
                accesses=(("admission:drop_oldest", "write"),
                          ("server:dispatch", "write")),
                note=(
                    "drop_oldest evicted an in-flight request "
                    f"(age {age:.6f}s): under sustained overload every "
                    "admitted request is evicted before completion — the "
                    "livelock documented in "
                    "benchmarks/test_overload_shedding.py; shed from "
                    "non-in-flight entries instead"
                ),
            )
        )

    # ------------------------------------------------------------------
    # Conflict derivation / report
    # ------------------------------------------------------------------
    def _derive(self) -> tuple[list[Conflict], list[Conflict]]:
        conflicts = list(self._injected)
        hazards: list[Conflict] = []
        for (owner, field_name, now), entries in self._records.items():
            accessors = {a for a, _ in entries}
            if len(accessors) < 2:
                continue
            writers = {a for a, kind in entries if kind == "write"}
            if not writers:
                continue
            # At least one other accessor besides a writer: write/write or
            # write/read across activation (or stage/engine) boundaries.
            if len(writers) >= 2 or accessors - writers:
                found = Conflict(
                    owner=owner,
                    field=field_name,
                    time=now,
                    accesses=tuple(entries),
                )
                # Shared RNG substreams are serialized by the engine's
                # total (time, seq) event order, so same-instant draws
                # from two contexts are deterministic — but the variate
                # assignment would shift under any scheduling change.
                # Surface them without failing the run.
                if isinstance(owner, str) and owner.startswith("rng:"):
                    hazards.append(found)
                else:
                    conflicts.append(found)
        key = lambda c: (c.time, str(c.owner), c.field)  # noqa: E731
        conflicts.sort(key=key)
        hazards.sort(key=key)
        return conflicts, hazards

    def conflicts(self) -> list[Conflict]:
        """Cross-accessor same-instant write/write and write/read pairs."""
        return self._derive()[0]

    def rng_hazards(self) -> list[Conflict]:
        """Same-instant multi-context draws on one shared RNG stream."""
        return self._derive()[1]

    def report(self) -> dict:
        conflicts, hazards = self._derive()
        return {
            "ok": not conflicts,
            "events_seen": self.events_seen,
            "accesses": self.accesses,
            "distinct_sites": len(self._records),
            "rng_draws": dict(sorted(self.rng_draws.items())),
            "conflicts": [c.to_dict() for c in conflicts],
            "rng_hazards": [c.to_dict() for c in hazards],
            "payload_events": [e.to_dict() for e in self.payload_events],
            "window_events": [e.to_dict() for e in self.window_events],
        }


# ----------------------------------------------------------------------
# Salted-hash order-dependence probe
# ----------------------------------------------------------------------
_DEFAULT_SALTS = (0x9E3779B9, 0x51F15E3D)


def detect_order_dependence(
    probe: Callable[[], Any], salts: Sequence[int] = _DEFAULT_SALTS
) -> OrderProbe:
    """Run ``probe`` under perturbed ``ActorId`` hashing.

    ``probe`` must build its world from scratch and return a comparable
    result (a digest).  Only ``set``/``frozenset`` iteration depends on
    element hashes (dicts are insertion-ordered), so any divergence under
    a non-zero salt proves the probed computation iterates a set of
    actor identities somewhere order-sensitive.
    """
    from repro.actor import ids

    baseline = probe()
    divergent = []
    for salt in salts:
        ids.set_hash_salt(salt)
        try:
            result = probe()
        finally:
            ids.set_hash_salt(0)
        if result != baseline:
            divergent.append(salt)
    return OrderProbe(
        baseline=baseline,
        divergent_salts=tuple(divergent),
        salts_tried=tuple(salts),
    )
