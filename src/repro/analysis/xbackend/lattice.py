"""The picklability type lattice.

The TCP transport moves every cross-silo message through
``pickle.dumps`` / ``pickle.loads``; the inproc transport hands the
same objects over by reference.  A payload that cannot pickle therefore
*works* on one backend and *fails* (or silently drops, per the
lost-message model) on the other — the worst kind of portability bug,
because the fast local test path never exercises it.

This module answers, per expression, "can the value this produces cross
the TCP transport?" with a four-point lattice::

        UNPICKLABLE            (definitely cannot cross: fail the lint)
            |
         UNKNOWN               (opaque call results, attributes, ...)
            |
        PICKLABLE              (constants, containers of picklable)
            |
         BOTTOM                (no information yet)

``join`` moves up the lattice, so a conditional that may produce either
a constant or an open file joins to UNPICKLABLE and the rule fires.
Only UNPICKLABLE findings are reported: UNKNOWN stays silent, which
keeps the pass quiet on ordinary application values at the cost of
missing exotic ones — the same over-approximate-but-quiet contract the
FLOW rules follow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Optional

from ..rules import _attr_chain

__all__ = ["Pickle", "Verdict", "classify", "MethodPickleEnv",
           "UNPICKLABLE_FACTORY_CALLS", "UNPICKLABLE_FACTORY_PREFIXES",
           "RUNTIME_HANDLE_FIELDS"]


class Pickle:
    """Lattice levels, ordered so ``max`` is the join."""

    BOTTOM = 0
    PICKLABLE = 1
    UNKNOWN = 2
    UNPICKLABLE = 3


@dataclass(frozen=True)
class Verdict:
    """One point in the lattice, with the reason when unpicklable."""

    level: int
    reason: str = ""

    def join(self, other: "Verdict") -> "Verdict":
        if other.level > self.level:
            return other
        return self

    @property
    def unpicklable(self) -> bool:
        return self.level == Pickle.UNPICKLABLE


BOTTOM = Verdict(Pickle.BOTTOM)
PICKLABLE = Verdict(Pickle.PICKLABLE)
UNKNOWN = Verdict(Pickle.UNKNOWN)


def unpicklable(reason: str) -> Verdict:
    return Verdict(Pickle.UNPICKLABLE, reason)


#: Builtin factories whose results hold process-local iteration state or
#: OS handles; ``pickle.dumps`` rejects all of them.
UNPICKLABLE_FACTORY_CALLS = frozenset({
    "open", "iter", "map", "filter", "zip", "enumerate", "reversed",
    "memoryview", "compile",
})

#: Module prefixes whose constructors produce process-local OS objects.
UNPICKLABLE_FACTORY_PREFIXES = (
    "threading.", "socket.", "subprocess.", "multiprocessing.",
    "asyncio.", "selectors.", "mmap.",
)

#: ``self.<field>`` names that conventionally hold the hosting engine /
#: silo / runtime — live machinery a message payload must never carry.
RUNTIME_HANDLE_FIELDS = frozenset({
    "rt", "_rt", "runtime", "_runtime", "sim", "_sim", "engine",
    "_engine", "backend", "_backend", "silo", "_silo", "loop", "_loop",
    "server", "_server",
})


def _call_target(call: ast.Call, mod) -> Optional[str]:
    chain = _attr_chain(call.func)
    if chain is None:
        return None
    resolved = mod.imports.resolve(call.func) if mod is not None else None
    return resolved or chain


def classify(expr: ast.expr, mod, cls,
             env: Optional[Dict[str, Verdict]] = None) -> Verdict:
    """Lattice verdict for one expression.

    ``env`` maps local names to verdicts (built by
    :class:`MethodPickleEnv`); without it, names are UNKNOWN.
    """
    if isinstance(expr, ast.Constant):
        return PICKLABLE
    if isinstance(expr, ast.Lambda):
        return unpicklable("a lambda (closures do not pickle)")
    if isinstance(expr, ast.GeneratorExp):
        return unpicklable("a generator expression (live iteration state)")
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        out = PICKLABLE
        for elt in expr.elts:
            out = out.join(classify(elt, mod, cls, env))
        return out
    if isinstance(expr, ast.Dict):
        out = PICKLABLE
        for key in expr.keys:
            if key is not None:
                out = out.join(classify(key, mod, cls, env))
        for value in expr.values:
            out = out.join(classify(value, mod, cls, env))
        return out
    if isinstance(expr, ast.Starred):
        return classify(expr.value, mod, cls, env)
    if isinstance(expr, ast.IfExp):
        return classify(expr.body, mod, cls, env).join(
            classify(expr.orelse, mod, cls, env))
    if isinstance(expr, ast.Name):
        if env is not None and expr.id in env:
            return env[expr.id]
        return UNKNOWN
    if isinstance(expr, ast.Attribute):
        chain = _attr_chain(expr)
        if (chain and chain.startswith(("self.", "cls."))
                and chain.count(".") == 1):
            attr = chain.split(".")[1]
            if attr in RUNTIME_HANDLE_FIELDS:
                return unpicklable(
                    f"the engine/silo handle {chain} (process-local "
                    f"runtime machinery)")
            if cls is not None and attr in cls.methods:
                return unpicklable(
                    f"the bound method {chain} (captures the live "
                    f"instance)")
        return UNKNOWN
    if isinstance(expr, ast.Call):
        target = _call_target(expr, mod)
        if target is None:
            return UNKNOWN
        last = target.split(".")[-1]
        if target in UNPICKLABLE_FACTORY_CALLS \
                or last in UNPICKLABLE_FACTORY_CALLS:
            return unpicklable(
                f"the result of {last}() (live handle/iterator)")
        if target.startswith(UNPICKLABLE_FACTORY_PREFIXES):
            return unpicklable(
                f"the result of {target}() (process-local OS object)")
        return UNKNOWN
    return UNKNOWN


class MethodPickleEnv:
    """Local-name verdict environment for one function body.

    Two monotone passes (assignments join into the environment) so
    verdicts flow through loops and forward uses, mirroring the
    provenance evaluator in :mod:`repro.analysis.flow.cfg`.
    """

    def __init__(self, fn: ast.AST, mod, cls):
        self.env: Dict[str, Verdict] = {}
        for _ in range(2):
            for node in ast.walk(fn):
                targets = []
                value = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                elif (isinstance(node, ast.With)):
                    for item in node.items:
                        if item.optional_vars is not None and isinstance(
                                item.optional_vars, ast.Name):
                            verdict = classify(item.context_expr, mod, cls,
                                               self.env)
                            self._bind(item.optional_vars.id, verdict)
                    continue
                if value is None:
                    continue
                verdict = classify(value, mod, cls, self.env)
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._bind(target.id, verdict)

    def _bind(self, name: str, verdict: Verdict) -> None:
        # Join, don't overwrite: any path that can bind an unpicklable
        # value taints the name (over-approximation on purpose).
        self.env[name] = self.env.get(name, BOTTOM).join(verdict)
