"""Payload escape/aliasing analysis.

The question this module answers, per send site: *which objects leave
the sender inside a message, and does the sender keep a live reference
to any of them?*  On the inproc transport the receiver gets the very
same object (sharing by reference), on TCP it gets a pickle deep copy —
so a payload the sender retains and later reads or mutates means the
program's results depend on which transport it runs on.

Everything here is a lexical over-approximation in the style of the
flow pass: a payload "escapes aliased" when it is

* ``self.<field>`` where the field is *mutable* (initialised to or
  rebuilt from a list/dict/set/... anywhere in the class, or hit by a
  container-mutator call), because the sender's state retains the
  reference by construction; or
* a local name bound to such a field; or
* a local name bound to a fresh mutable literal that the sender then
  mutates *after* the send line, or stores into ``self`` (which retains
  it past the turn).

Container literals are traversed, so ``Call(ref, "m", [self.members])``
is caught; arbitrary calls are not (``list(self.members)`` makes a copy
and is the canonical fix).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..rules import _attr_chain
from .lattice import RUNTIME_HANDLE_FIELDS

__all__ = ["SendSite", "send_sites", "mutable_fields", "yield_lines",
           "AliasFacts", "MUTABLE_FACTORY_CALLS"]

#: Message-bearing constructors / methods and the index of their first
#: payload argument: ``Call(target, method, *payload)``,
#: ``Tell(target, method, *payload)``,
#: ``runtime.client_request(ref, method, *payload, ...)``,
#: ``runtime.send(ref, method, *payload, ...)``.
_SEND_SHAPES: Dict[str, int] = {
    "Call": 2,
    "Tell": 2,
    "client_request": 2,
    "send": 2,
}

#: Callables that build a *new mutable container*; a field assigned one
#: of these is mutable state even without a literal initializer.
MUTABLE_FACTORY_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict", "array", "sorted",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.SetComp, ast.DictComp)

#: Container methods that mutate the receiver in place.
_LOCAL_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "appendleft", "popleft",
    "clear", "sort", "reverse",
})


@dataclass(frozen=True)
class SendSite:
    """One message construction inside a function body."""

    line: int
    kind: str                       # "Call" | "Tell" | "client_request" | "send"
    method: Optional[str]           # target method if a string constant
    payload: Tuple[ast.expr, ...]   # positional payload expressions


def is_mutable_initializer(expr: ast.expr) -> bool:
    """Does this expression build a mutable container?"""
    if isinstance(expr, _MUTABLE_LITERALS):
        return True
    if isinstance(expr, ast.Call):
        chain = _attr_chain(expr.func)
        if chain and chain.split(".")[-1] in MUTABLE_FACTORY_CALLS:
            return True
    return False


def send_sites(fn: ast.AST) -> List[SendSite]:
    """All message-send sites lexically inside ``fn``.

    Matching is by last-name, like the provenance evaluator: the real
    ``repro.actor.calls.Call`` and a fixture stand-in named ``Call``
    both count.
    """
    out: List[SendSite] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        last = chain.split(".")[-1]
        skip = _SEND_SHAPES.get(last)
        if skip is None or len(node.args) < skip:
            continue
        if last == "send" and not _looks_like_runtime_send(chain, node):
            continue
        method = None
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            method = node.args[1].value
        out.append(SendSite(line=node.lineno, kind=last, method=method,
                            payload=tuple(node.args[skip:])))
    out.sort(key=lambda s: (s.line, s.kind))
    return out


def _looks_like_runtime_send(chain: str, node: ast.Call) -> bool:
    """``send`` is a common name (sockets, queues); only treat it as an
    actor send when the receiver looks like runtime machinery and the
    second argument is the method-name string."""
    parts = chain.split(".")
    if len(parts) < 2:
        return False
    owner = parts[-2]
    if owner not in RUNTIME_HANDLE_FIELDS and owner not in (
            "rt", "be", "cluster", "self"):
        return False
    return (len(node.args) >= 2 and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str))


def mutable_fields(cls) -> Dict[str, str]:
    """``field -> why`` for every field of ``cls`` that holds a mutable
    container (judged from every write site plus mutator calls)."""
    out: Dict[str, str] = {}
    for mname in sorted(cls.methods):
        info = cls.methods[mname]
        for write in info.field_writes:
            if write.field_name not in out \
                    and is_mutable_initializer(write.value):
                out[write.field_name] = (
                    f"initialised to a mutable container in {mname}()")
        for mut in info.mutations:
            if mut.field_name not in out and "container mutator" in mut.desc:
                out[mut.field_name] = mut.desc
    return out


def yield_lines(fn: ast.FunctionDef) -> List[int]:
    """Lines of every yield point in ``fn`` itself (not nested defs)."""
    lines: List[int] = []

    class _Finder(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is fn:
                self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Yield(self, node: ast.Yield) -> None:
            lines.append(node.lineno)
            self.generic_visit(node)

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            lines.append(node.lineno)
            self.generic_visit(node)

    _Finder().visit(fn)
    return sorted(lines)


@dataclass
class AliasFacts:
    """Per-function alias facts feeding XB-ALIASED-MUTABLE.

    ``field_aliases``:  local name -> self-fields it may alias.
    ``mutable_locals``: local name -> line where a fresh mutable
                        container was bound to it.
    ``local_mutations``: local name -> lines where it is mutated in
                         place (mutator call, augassign, item assign).
    ``stored_locals``:  local names stored into ``self.<field>`` (the
                        sender retains them past the turn).
    """

    field_aliases: Dict[str, Set[str]] = field(default_factory=dict)
    mutable_locals: Dict[str, int] = field(default_factory=dict)
    local_mutations: Dict[str, List[int]] = field(default_factory=dict)
    stored_locals: Set[str] = field(default_factory=set)

    @classmethod
    def collect(cls, fn: ast.AST) -> "AliasFacts":
        facts = cls()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                facts._assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                facts._assign([node.target], node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    facts._mutate(node.target.id, node.lineno)
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain:
                    parts = chain.split(".")
                    if len(parts) == 2 and parts[1] in _LOCAL_MUTATORS:
                        facts._mutate(parts[0], node.lineno)
        return facts

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        lineno = value.lineno
        for target in targets:
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name):
                # item assignment mutates the container in place
                self._mutate(target.value.id, lineno)
                continue
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self" \
                    and isinstance(value, ast.Name):
                # self.f = local: the sender's state retains the local
                self.stored_locals.add(value.id)
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            chain = _attr_chain(value)
            if chain and chain.startswith("self.") and chain.count(".") == 1:
                self.field_aliases.setdefault(name, set()).add(
                    chain.split(".")[1])
            elif isinstance(value, ast.Name) and value.id in self.field_aliases:
                self.field_aliases.setdefault(name, set()).update(
                    self.field_aliases[value.id])
            elif is_mutable_initializer(value):
                self.mutable_locals.setdefault(name, lineno)

    def _mutate(self, name: str, line: int) -> None:
        self.local_mutations.setdefault(name, []).append(line)
