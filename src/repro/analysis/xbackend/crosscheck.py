"""Static ⊇ dynamic cross-check for the XB portability rules.

Same tradition as the PR-4 sanitizer and the PR-5 interaction-graph
check: the static analysis is an over-approximation, so every hazard a
*real run* observes must already be covered by a static finding at the
same (sender class, method).  The dynamic side is the asyncio backend's
payload probe — armed through the sanitizer, it records an event
whenever an outgoing message payload aliases the sender's own state or
fails ``pickle.dumps``.  The static side is :func:`run_xb_rules` over
the same source tree (waived findings still count as coverage: a waiver
is a human-audited acknowledgement, not a blind spot).

:func:`crosscheck_parity` drives the asyncio parity programs (the
cross-silo ping pair and the Stageflow pipeline) with the deep-copy
inproc transport and the probe armed, then demands dynamic ⊆ static.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..coverage import Coverage, read_sources, static_coverage
from ..coverage import crosscheck_events as _crosscheck_events

__all__ = ["static_coverage", "crosscheck_events", "crosscheck_parity",
           "format_xb_crosscheck"]

#: dynamic event kind -> the static rule that must cover it
_KIND_TO_RULE = {
    "alias": "XB-ALIASED-MUTABLE",
    "unpicklable": "XB-UNPICKLABLE-PAYLOAD",
}


def crosscheck_events(coverage: Coverage, events: Sequence) -> dict:
    """Demand every dynamic payload event is covered statically.

    ``events`` are :class:`~repro.analysis.sanitizer.PayloadEvent`\\ s;
    an event is covered when a static finding with the matching rule
    lands inside the same sender class + method.
    """
    return _crosscheck_events(coverage, events, _KIND_TO_RULE)


def _run_parity_programs(transport: str) -> Tuple[list, int]:
    """Drive the two parity programs (cross-silo ping, Stageflow) on the
    asyncio backend with the payload probe armed.  Returns the recorded
    payload events and the transport's pickle-copy failure count."""
    # Lazy: this is the only part of the analysis package that touches
    # the runtime, and only when a caller asks for the dynamic side.
    from ... import ClusterConfig, build_cluster
    from ...backend.bench import PingerActor, PongerActor
    from ...workloads.stageflow import (
        StageSpec,
        StageflowConfig,
        StageflowWorkload,
    )
    from ..sanitizer import Sanitizer

    pickle_failures = 0
    san = Sanitizer()
    with san.armed():
        cluster = build_cluster(ClusterConfig(num_servers=2, seed=7),
                                backend="asyncio", transport=transport)
        with cluster:
            be = cluster.backend
            be.register_actor("pinger", PingerActor)
            be.register_actor("ponger", PongerActor)
            cluster.start()
            be.spawn(be.ref("pinger", 0), server=0)
            be.spawn(be.ref("ponger", 0), server=1)
            for i in range(10):
                be.call(be.ref("pinger", 0), "ping", i, size=64,
                        response_size=64)
                cluster.run()
            pickle_failures += be.runtime.pickle_copy_failures

        cluster = build_cluster(ClusterConfig(num_servers=4, seed=7),
                                backend="asyncio", transport=transport)
        with cluster:
            cluster.start()
            workload = StageflowWorkload(cluster.runtime, StageflowConfig(
                stages=(StageSpec("route", compute=50e-6, replicas=2),
                        StageSpec("enrich", compute=100e-6,
                                  heavy_compute=200e-6, replicas=3),
                        StageSpec("transform", compute=80e-6, replicas=2)),
                policy="round_robin",
                pipelines=2,
                router_shards=2,
                report_period=None,
                heavy_fraction=0.3,
            ))
            workload.start(arrivals=False)
            workload.drive(40)
            cluster.run()
            pickle_failures += cluster.runtime.pickle_copy_failures
    return list(san.payload_events), pickle_failures


def crosscheck_parity(paths: Sequence[str] = ("src/repro",),
                      base: str = ".",
                      transport: str = "inproc-copy") -> dict:
    """The CI cross-check: run the parity suite with the deep-copy
    inproc transport and the probe armed, statically analyze ``paths``,
    and verify static ⊇ dynamic."""
    from . import analyze_xbackend

    sources = read_sources(paths, base)
    index, findings = analyze_xbackend(sources)
    coverage = static_coverage(index, findings)

    events, pickle_failures = _run_parity_programs(transport)
    report = crosscheck_events(coverage, events)
    report["transport"] = transport
    report["pickle_copy_failures"] = pickle_failures
    report["static_findings"] = len(findings)
    report["files_analyzed"] = len(sources)
    return report


def format_xb_crosscheck(report: dict) -> str:
    lines = [
        f"xbackend crosscheck ({report.get('transport', '?')}): "
        f"{len(report.get('dynamic_events', []))} dynamic event(s), "
        f"{report.get('static_findings', 0)} static finding(s), "
        f"{report.get('pickle_copy_failures', 0)} pickle copy failure(s)",
    ]
    for entry in report.get("uncovered", []):
        lines.append(
            f"  UNCOVERED {entry['kind']} at "
            f"{entry['sender']}.{entry['method']} — no static "
            f"{entry['expected_rule']} finding covers it")
    lines.append("static ⊇ dynamic: " + ("OK" if report.get("ok") else "FAIL"))
    return "\n".join(lines)
