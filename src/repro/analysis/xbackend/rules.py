"""The XB rule family: cross-backend portability checks.

One actor program runs on three engines — the discrete-event simulator,
asyncio with the in-process reference-passing transport, and asyncio
with the length-prefixed-pickle TCP transport.  Location transparency
(the paper's standing assumption, Orleans' enforced contract) says the
program must *mean the same thing* on all three.  Two mechanical
differences break that silently:

* **Copy semantics.**  Inproc hands message payloads over by reference;
  TCP deep-copies them through pickle.  A mutable payload the sender
  retains is shared state on one transport and a snapshot on the other
  (``XB-ALIASED-MUTABLE``), and a payload that cannot pickle at all
  crosses inproc happily but never crosses TCP
  (``XB-UNPICKLABLE-PAYLOAD``).
* **Turn semantics.**  The simulator runs a turn to completion in an
  instant of virtual time; asyncio suspends the turn at every yield
  point and may interleave other turns while it waits, exposing
  partially-updated ``self`` state (``XB-AWAIT-TURN-SPLIT``).  And a
  supervision restart rebuilds an activation from its *persisted* state
  only, silently resetting any field mutated outside that set
  (``XB-UNPERSISTED-RESTORE``).

The rules run over the same :class:`~repro.analysis.flow.index.ProjectIndex`
the FLOW family uses and report through the same Finding/waiver pipeline,
so ``# repro: waive[XB-...] -- reason`` works unchanged.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List, Optional, Tuple, Type

from ..findings import Finding, Severity
from ..flow.index import ClassInfo, ModuleInfo, ProjectIndex
from .escape import (
    AliasFacts,
    SendSite,
    mutable_fields,
    send_sites,
    yield_lines,
)
from .lattice import MethodPickleEnv, classify

__all__ = ["XBRule", "all_xb_rules", "run_xb_rules",
           "XB_ALIASED_MUTABLE", "XB_UNPICKLABLE_PAYLOAD",
           "XB_AWAIT_TURN_SPLIT", "XB_UNPERSISTED_RESTORE"]

XB_ALIASED_MUTABLE = "XB-ALIASED-MUTABLE"
XB_UNPICKLABLE_PAYLOAD = "XB-UNPICKLABLE-PAYLOAD"
XB_AWAIT_TURN_SPLIT = "XB-AWAIT-TURN-SPLIT"
XB_UNPERSISTED_RESTORE = "XB-UNPERSISTED-RESTORE"

#: Lifecycle methods excluded from mutate-outside-PERSISTED checks: they
#: run before the first persisted snapshot or as part of snapshotting.
_LIFECYCLE_METHODS = frozenset({
    "__init__", "on_activate", "on_deactivate",
    "capture_state", "restore_state",
})

_XB_REGISTRY: List[Type["XBRule"]] = []


class XBRule:
    """One project-wide portability rule over the symbol index."""

    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    description: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, index: ProjectIndex) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(rule=self.name, severity=self.severity,
                       path=path, line=line, message=message)


def _register(cls: Type[XBRule]) -> Type[XBRule]:
    _XB_REGISTRY.append(cls)
    return cls


def all_xb_rules() -> Tuple[Type[XBRule], ...]:
    return tuple(_XB_REGISTRY)


def _sender_bodies(index: ProjectIndex) -> Iterator[
        Tuple[ModuleInfo, Optional[ClassInfo], str, ast.AST]]:
    """Every function body that could construct a message: methods of
    every class (actors *and* client-side workload/driver classes) plus
    module-level functions.  Deterministic order."""
    for path in sorted(index.modules):
        mod = index.modules[path]
        for cls_name in sorted(mod.classes):
            cls = mod.classes[cls_name]
            for mname in sorted(cls.methods):
                node = cls.methods[mname].node
                if node is not None:
                    yield mod, cls, mname, node
        for fname in sorted(mod.functions):
            yield mod, None, fname, mod.functions[fname]


def _payload_parts(expr: ast.expr) -> Iterator[ast.expr]:
    """The expression itself plus anything reachable through container
    *literals* (a list payload wrapping a field still aliases it); calls
    like ``list(self.f)`` are copies and are deliberately opaque."""
    yield expr
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for elt in expr.elts:
            yield from _payload_parts(elt)
    elif isinstance(expr, ast.Dict):
        for value in expr.values:
            yield from _payload_parts(value)
    elif isinstance(expr, ast.Starred):
        yield from _payload_parts(expr.value)


def _site_desc(site: SendSite) -> str:
    if site.method is not None:
        return f"{site.kind}(..., {site.method!r}, ...)"
    return f"{site.kind}(...)"


@_register
class AliasedMutableRule(XBRule):
    name = XB_ALIASED_MUTABLE
    description = ("mutable object sent in a message while the sender "
                   "retains a reference to it")
    rationale = ("The inproc transport delivers payloads by reference and "
                 "TCP delivers a pickle deep copy, so a payload the sender "
                 "keeps and later reads or mutates is shared state on one "
                 "transport and a private snapshot on the other — results "
                 "diverge by transport.  Send an immutable snapshot "
                 "(tuple(...), dict(...) copy) instead.")

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for mod, cls, fname, fn in _sender_bodies(index):
            sites = send_sites(fn)
            if not sites:
                continue
            shared = mutable_fields(cls) if cls is not None else {}
            facts = AliasFacts.collect(fn)
            owner = f"{cls.name}.{fname}" if cls is not None else f"{fname}"
            for site in sites:
                for arg in site.payload:
                    hit = self._aliased(arg, site, shared, facts)
                    if hit is None:
                        continue
                    findings.append(self.finding(
                        mod.path, site.line,
                        f"{owner} sends {hit} in {_site_desc(site)}: "
                        f"shared by reference on the inproc transport but "
                        f"pickle-copied over TCP, so sender and receiver "
                        f"observe different objects depending on the "
                        f"backend; send an immutable snapshot instead"))
                    break       # one finding per send site is enough
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings

    @staticmethod
    def _aliased(arg: ast.expr, site: SendSite, shared, facts) -> Optional[str]:
        for part in _payload_parts(arg):
            if isinstance(part, ast.Attribute) \
                    and isinstance(part.value, ast.Name) \
                    and part.value.id == "self" \
                    and part.attr in shared:
                return (f"self.{part.attr} (a mutable container the "
                        f"sender's state retains: {shared[part.attr]})")
            if isinstance(part, ast.Name):
                aliased = facts.field_aliases.get(part.id, set()) & set(shared)
                if aliased:
                    f = sorted(aliased)[0]
                    return (f"local {part.id!r} aliasing self.{f} (a "
                            f"mutable container the sender's state retains)")
                if part.id in facts.mutable_locals:
                    muts = [ln for ln in facts.local_mutations.get(part.id, [])
                            if ln > site.line]
                    if muts:
                        return (f"local {part.id!r} (mutable container) and "
                                f"mutates it after the send at line "
                                f"{muts[0]}")
                    if part.id in facts.stored_locals:
                        return (f"local {part.id!r} (mutable container) "
                                f"also stored into the sender's own state")
        return None


@_register
class UnpicklablePayloadRule(XBRule):
    name = XB_UNPICKLABLE_PAYLOAD
    description = ("message payload whose inferred type cannot cross the "
                   "TCP transport (pickle)")
    rationale = ("TCP frames are pickle bytes: lambdas, generators, open "
                 "files, locks, sockets, and engine/silo handles raise at "
                 "dumps() time — but the same payload crosses the inproc "
                 "transport by reference without complaint, so the bug "
                 "only surfaces when the program is deployed distributed.")

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for mod, cls, fname, fn in _sender_bodies(index):
            sites = send_sites(fn)
            if not sites:
                continue
            env = MethodPickleEnv(fn, mod, cls).env
            owner = f"{cls.name}.{fname}" if cls is not None else f"{fname}"
            for site in sites:
                for arg in site.payload:
                    verdict = classify(arg, mod, cls, env)
                    if not verdict.unpicklable:
                        continue
                    findings.append(self.finding(
                        mod.path, site.line,
                        f"{owner} sends {verdict.reason} in "
                        f"{_site_desc(site)}: pickle.dumps() rejects it, so "
                        f"the message crosses the inproc transport but can "
                        f"never cross TCP — the program only works "
                        f"single-process"))
                    break       # one finding per send site is enough
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


@_register
class AwaitTurnSplitRule(XBRule):
    name = XB_AWAIT_TURN_SPLIT
    description = ("reentrant actor method mutates state both before and "
                   "after a yield point (turn splits on asyncio)")
    rationale = ("The simulator runs a turn to completion at one instant "
                 "of virtual time; the asyncio backend suspends the turn "
                 "at every yield and interleaves other turns while it "
                 "waits.  A reentrant actor that mutates state before the "
                 "yield and again after it exposes the partial update to "
                 "whatever runs in between — an interleaving the sim can "
                 "never produce.  Set REENTRANT = False, or stage the "
                 "update so all writes land after the last yield.")

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for cls in index.actor_classes():
            if not cls.reentrant:
                continue        # parked turns never interleave: safe
            for mname in sorted(cls.methods):
                method = cls.methods[mname]
                if not method.is_generator or method.node is None \
                        or mname in _LIFECYCLE_METHODS:
                    continue
                writes = sorted(
                    {(w.line, w.field_name) for w in method.field_writes}
                    | {(m.line, m.field_name) for m in method.mutations})
                if not writes:
                    continue
                for yline in yield_lines(method.node):
                    before = [w for w in writes if w[0] < yline]
                    after = [w for w in writes if w[0] > yline]
                    if not before or not after:
                        continue
                    findings.append(self.finding(
                        cls.path, yline,
                        f"{cls.name}.{mname} mutates "
                        f"self.{before[-1][1]} (line {before[-1][0]}) "
                        f"before and self.{after[0][1]} (line "
                        f"{after[0][0]}) after the yield at line {yline}: "
                        f"on asyncio the turn suspends here and other "
                        f"turns observe the partial update; the sim's "
                        f"run-to-completion semantics never exposes it"))
                    break       # one finding per method is enough
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


def persisted_fields(cls: ClassInfo) -> Optional[Tuple[str, ...]]:
    """The ``PERSISTED = (...)`` declaration of a class, if any."""
    if cls.node is None:
        return None
    for stmt in cls.node.body:
        name = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            name, value = stmt.target.id, stmt.value
        if name != "PERSISTED" or value is None:
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            fields = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str):
                    fields.append(elt.value)
            return tuple(fields)
    return None


@_register
class UnpersistedRestoreRule(XBRule):
    name = XB_UNPERSISTED_RESTORE
    description = ("actor mutates a field outside its PERSISTED set; a "
                   "supervision restart silently resets it")
    rationale = ("On restart the supervisor rebuilds the activation and "
                 "restores only capture_state()'s snapshot — with "
                 "PERSISTED declared, exactly those fields.  A field "
                 "mutated during normal turns but left out of the set "
                 "reverts to its __init__ value after every restart, on "
                 "every backend, without an error.  Add the field to "
                 "PERSISTED, or prefix it with '_' to mark it ephemeral.")

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for cls in index.actor_classes():
            persisted = persisted_fields(cls)
            if persisted is None:
                continue        # whole __dict__ persists: nothing to lose
            pset = set(persisted)
            for mname in sorted(cls.methods):
                if mname in _LIFECYCLE_METHODS:
                    continue
                method = cls.methods[mname]
                writes = sorted(
                    {(w.line, w.field_name) for w in method.field_writes}
                    | {(m.line, m.field_name) for m in method.mutations})
                reported = set()
                for line, fname in writes:
                    if fname in pset or fname.startswith("_") \
                            or fname in reported:
                        continue
                    reported.add(fname)
                    findings.append(self.finding(
                        cls.path, line,
                        f"{cls.name}.{mname} mutates self.{fname} but "
                        f"PERSISTED = {persisted!r} does not include it: "
                        f"a supervision restart restores only the "
                        f"persisted set, silently resetting self.{fname} "
                        f"to its __init__ value"))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return findings


def run_xb_rules(index: ProjectIndex) -> List[Finding]:
    """Run every XB rule; deterministic (path, line, rule) order."""
    findings: List[Finding] = []
    for rule_cls in all_xb_rules():
        findings.extend(rule_cls().check(index))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
