"""Cross-backend portability analysis (the XB rule family).

Static side: a payload escape/aliasing analysis (:mod:`.escape`) and a
picklability type lattice (:mod:`.lattice`) over the flow pass's
project index, emitting ``XB-*`` findings (:mod:`.rules`) through the
standard lint pipeline.

Dynamic side: the asyncio backend's payload probe (armed through the
sanitizer) plus the inproc deep-copy transport mode record the
aliasing/pickle hazards a real run actually hits;
:mod:`.crosscheck` verifies static ⊇ dynamic — every observed hazard
must be covered by a static XB finding at the same class/method.

Entry point for the linter: :func:`analyze_xbackend`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..findings import Finding, Severity
from ..flow.index import ProjectIndex, build_index
from .crosscheck import (
    crosscheck_events,
    crosscheck_parity,
    format_xb_crosscheck,
    static_coverage,
)
from .rules import XBRule, all_xb_rules, run_xb_rules

__all__ = [
    "XBRule",
    "all_xb_rules",
    "analyze_xbackend",
    "crosscheck_events",
    "crosscheck_parity",
    "format_xb_crosscheck",
    "run_xb_rules",
    "static_coverage",
]


def analyze_xbackend(files: Sequence[Tuple[str, str]],
                     ) -> Tuple[ProjectIndex, List[Finding]]:
    """Index ``(relpath, source)`` pairs and run every XB rule.  Parse
    failures become findings (the per-file pass reports them too; the
    linter deduplicates)."""
    index = build_index(files)
    findings = run_xb_rules(index)
    for path, line, msg in index.parse_failures:
        findings.append(Finding(
            rule="PARSE-ERROR", severity=Severity.ERROR,
            path=path, line=line, message=f"file does not parse: {msg}"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return index, findings
