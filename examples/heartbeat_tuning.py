"""Heartbeat thread-allocation tuning: default vs queue-length vs ActOp.

§5's single-server story, end to end: the same Heartbeat load (the
paper's 15K req/s point) under three thread-allocation regimes —

* the Orleans default (one thread per stage per core, 32 threads on 8),
* the queue-length threshold controller the paper argues against, and
* ActOp's model-based controller (estimate -> solve (*) -> apply).

Run:  python examples/heartbeat_tuning.py     (about a minute)
"""

from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.bench.harness import HEARTBEAT_TIME_SCALE, HeartbeatExperiment
from repro.bench.reporting import render_table
from repro.core.threads.controller import QueueLengthController
from repro.workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload

RATE = 15_000.0


def run_with_queue_controller():
    ts = HEARTBEAT_TIME_SCALE
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=3, time_scale=ts))
    workload = HeartbeatWorkload(
        rt, HeartbeatConfig(num_monitors=800, request_rate=RATE / ts)
    )
    ctrl = QueueLengthController(
        rt.sim, rt.silos[0].server, period=3.0,
        high_threshold=100, low_threshold=10,
    )
    workload.start()
    ctrl.start()
    rt.run(until=25.0)
    rt.reset_latency_stats()
    busy0, t0 = rt.cpu_busy_snapshot(), rt.sim.now
    rt.run(until=60.0)
    lat = rt.client_latency
    return {
        "label": "queue-length controller [34]",
        "median": lat.median / ts,
        "p95": lat.p95 / ts,
        "p99": lat.p99 / ts,
        "cpu": rt.mean_cpu_utilization(busy0, t0),
        "alloc": rt.silos[0].server.thread_allocation(),
    }


def main():
    rows = []
    for optimize, label in ((False, "Orleans default (8 per stage)"),
                            (True, "ActOp model-based (§5)")):
        exp = HeartbeatExperiment(request_rate=RATE, thread_allocation=optimize,
                                  label=label)
        r = exp.run()
        rows.append([label, r.median * 1000, r.p95 * 1000, r.p99 * 1000,
                     100 * r.cpu_utilization, str(r.thread_allocation)])

    q = run_with_queue_controller()
    rows.insert(1, [q["label"], q["median"] * 1000, q["p95"] * 1000,
                    q["p99"] * 1000, 100 * q["cpu"], str(q["alloc"])])

    print(render_table(
        ["configuration", "median ms", "p95 ms", "p99 ms", "CPU %",
         "final allocation"],
        rows,
        title=f"Heartbeat at {RATE:.0f} req/s on one 8-core server",
    ))


if __name__ == "__main__":
    main()
