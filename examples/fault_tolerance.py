"""Fault tolerance: crash a silo under live traffic and watch recovery.

§2 of the paper: Orleans "automatically handles hardware or software
failures by re-instantiating the failed actor upon the next call to it."
This example runs a small cluster of session actors with call timeouts
enabled, kills one silo mid-run, and reports:

* how many in-flight requests were lost to the crash (timeouts),
* how quickly traffic recovers (the dead silo's actors re-activate
  elsewhere on their next call, restoring persisted state),
* where the displaced actors landed.

Run:  python examples/fault_tolerance.py
"""

from collections import Counter

from repro import (
    Actor,
    CallTimeout,
    ClusterConfig,
    FaultPlan,
    ResilienceConfig,
    build_cluster,
)


class Session(Actor):
    """A user session counting its events; persists on deactivation."""

    COMPUTE = {"record": 60e-6, "snapshot": 30e-6}

    def __init__(self):
        super().__init__()
        self.events = 0

    def record(self, payload):
        self.events += 1
        return self.events

    def snapshot(self):
        return self.events


def main():
    victim = 2
    cluster = build_cluster(
        ClusterConfig(
            num_servers=4, seed=11,
            idle_collection_age=20.0,  # periodically persists idle actors
            idle_collection_period=5.0,
        ),
        # Half-second response timeout on every client call.
        resilience=ResilienceConfig(call_timeout=0.5),
        # The chaos script: one silo dies ten seconds in.
        faults=FaultPlan().crash(10.0, victim),
    )
    runtime = cluster.runtime
    runtime.register_actor("session", Session)
    sessions = [runtime.ref("session", i) for i in range(200)]

    stats = Counter()
    request_rng = runtime.rng.stream("demo.targets")

    def on_done(latency, result):
        stats["timeout" if isinstance(result, CallTimeout) else "ok"] += 1

    def drive():
        for _ in range(20):
            target = sessions[request_rng.randrange(len(sessions))]
            # record() double-counts if replayed; declaring it keeps an
            # idempotent-only retry policy from ever re-sending it.
            runtime.client_request(target, "record", "evt",
                                   on_complete=on_done, idempotent=False)
        runtime.sim.schedule(0.05, drive)

    runtime.sim.schedule(0.0, drive)

    cluster.start()  # arms the fault plan (times relative to now)
    print(f"cluster of 4 silos; silo {victim} will crash at t=10s\n")
    print(f"{'t(s)':>5} {'ok':>7} {'timeouts':>9} {'census':>24}")

    last_ok = last_to = 0
    for t in range(2, 21, 2):
        runtime.run(until=float(t))
        ok, to = stats["ok"] - last_ok, stats["timeout"] - last_to
        last_ok, last_to = stats["ok"], stats["timeout"]
        census = runtime.census()
        marker = "  <- crash" if t == 10 else ""
        print(f"{t:>5} {ok:>7} {to:>9} {str(census):>24}{marker}")

    displaced = runtime.census()
    print(f"\nafter the crash: silo {victim} hosts {displaced[victim]} actors; "
          "its former actors re-activated on the survivors")
    print(f"requests lost to the crash window: {stats['timeout']} "
          f"of {stats['ok'] + stats['timeout']} total")

    # Demonstrate state semantics: volatile state since the last persist
    # is lost; persisted state survives.
    probe = sessions[0]
    results = []
    runtime.client_request(probe, "snapshot",
                           on_complete=lambda lat, res: results.append(res))
    runtime.run(until=25.0)
    print(f"session 0 snapshot after recovery: {results[0]} events "
          "(persisted via idle collection; increments after the last "
          "persist died with the silo)")


if __name__ == "__main__":
    main()
