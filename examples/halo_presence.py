"""Halo Presence end-to-end: random placement vs ActOp partitioning.

Reproduces the paper's headline experiment (§6.1) at demo scale: a
10-server cluster serving the Halo Presence workload at ~80% baseline
CPU.  Prints the convergence time series (Fig. 10a) and the side-by-side
latency/CPU comparison (Figs. 10b/10e).

Run:  python examples/halo_presence.py         (about 2 minutes)
      ACTOP_QUICK=1 python examples/halo_presence.py   (smaller, faster)
"""

import os

from repro.bench.harness import HaloExperiment
from repro.bench.reporting import render_table


def main():
    quick = bool(os.environ.get("ACTOP_QUICK"))
    players = 800 if quick else 2_000
    warmup, duration = (45.0, 45.0) if quick else (90.0, 90.0)

    rows = []
    sampler = None
    for partitioning in (False, True):
        exp = HaloExperiment(
            load_fraction=1.0,
            players=players,
            partitioning=partitioning,
            label="ActOp partitioning" if partitioning else "random placement",
        )
        result = exp.run(warmup=warmup, duration=duration, sample_period=10.0)
        rows.append([
            result.label,
            result.median * 1000,
            result.p95 * 1000,
            result.p99 * 1000,
            100 * result.cpu_utilization,
            100 * result.remote_fraction,
            result.migrations,
        ])
        if partitioning:
            sampler = result.sampler

    print(render_table(
        ["configuration", "median ms", "p95 ms", "p99 ms", "CPU %",
         "remote %", "migrations"],
        rows,
        title="Halo Presence at the 80%-CPU operating point (paper's 6K req/s)",
    ))

    if sampler is not None:
        print("\nConvergence (Fig. 10a shape): remote share per 10s window")
        for t, share in sampler.remote_share.items():
            bar = "#" * int(share * 50)
            print(f"  t={t:6.0f}s  {share:5.2f}  {bar}")


if __name__ == "__main__":
    main()
