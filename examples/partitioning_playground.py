"""Partitioning playground: Alg. 1 vs centralized multilevel vs Ja-Be-Ja.

Offline comparison on static synthetic graphs (§4.1's design-alternatives
discussion): for each graph family, partition with

* random assignment (the Orleans default baseline),
* ActOp's distributed pairwise-exchange algorithm (Alg. 1),
* the centralized multilevel partitioner (METIS stand-in), and
* Ja-Be-Ja [30],

and report cut cost, balance, and wall-clock time.

Run:  python examples/partitioning_playground.py
"""

import random
import time

from repro.core.partitioning.offline import OfflinePartitioner
from repro.graph.generators import clustered_graph, power_law_graph, random_graph
from repro.graph.jabeja import jabeja_partition
from repro.graph.multilevel import multilevel_partition
from repro.graph.quality import cut_cost, max_imbalance
from repro.bench.reporting import render_table

SERVERS = 8


def random_assignment(graph, rng):
    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    return {v: i % SERVERS for i, v in enumerate(vertices)}


def evaluate(name, graph):
    rng = random.Random(0)
    rows = []

    base = random_assignment(graph, rng)
    rows.append(["random placement", cut_cost(graph, base),
                 max_imbalance(base, SERVERS), 0.0])

    start = time.perf_counter()  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim
    actop = OfflinePartitioner(graph, SERVERS, delta=8, k=64, seed=1,
                               initial=dict(base))
    actop.run(max_sweeps=40)
    rows.append(["ActOp Alg. 1 (distributed)", actop.cost,
                 actop.imbalance, time.perf_counter() - start])  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim

    start = time.perf_counter()  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim
    ml = multilevel_partition(graph, SERVERS, rng=random.Random(2))
    rows.append(["multilevel (centralized)", cut_cost(graph, ml),
                 max_imbalance(ml, SERVERS), time.perf_counter() - start])  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim

    start = time.perf_counter()  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim
    jb = jabeja_partition(graph, SERVERS, rounds=30, rng=random.Random(3),
                          initial=dict(base))
    rows.append(["Ja-Be-Ja [30]", cut_cost(graph, jb.assignment),
                 max_imbalance(jb.assignment, SERVERS),
                 time.perf_counter() - start])  # repro: waive[DET-WALLCLOCK] -- offline example: wall time is displayed, never fed to the sim

    print(render_table(
        ["algorithm", "cut cost", "imbalance", "seconds"],
        rows,
        title=f"{name}: {graph.num_vertices} vertices, {graph.num_edges} edges",
        floatfmt=".1f",
    ))


def main():
    evaluate(
        "Halo-shaped clusters (games of 8, light cross-talk)",
        clustered_graph(100, 9, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=random.Random(10)),
    )
    evaluate(
        "Power-law social graph",
        power_law_graph(800, attach=2, rng=random.Random(11)),
    )
    evaluate(
        "Uniform random graph (no structure to exploit)",
        random_graph(800, mean_degree=6.0, rng=random.Random(12)),
    )


if __name__ == "__main__":
    main()
