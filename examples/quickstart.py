"""Quickstart: a chat-like service on the simulated actor runtime + ActOp.

Builds a 4-server cluster, defines a Room actor (hub) and User actors
(spokes), drives broadcast traffic, and shows ActOp's partitioning
migrating each room next to its users — remote-message share collapsing
while end-to-end latency drops.

Run:  python examples/quickstart.py
"""

from repro import (
    ActOp,
    ActOpConfig,
    Actor,
    ActorRuntime,
    All,
    Call,
    ClusterConfig,
    PartitioningConfig,
    idempotent,
)


class User(Actor):
    """One chat participant."""

    COMPUTE = {"receive": 20e-6, "say": 30e-6}

    def __init__(self):
        super().__init__()
        self.inbox = 0
        self.room = None

    def join(self, room_ref):
        self.room = room_ref
        return True

    @idempotent
    def receive(self, text):
        # Replay-safe: inbox is a delivery diagnostic, not an exact count.
        self.inbox += 1
        return self.inbox

    def say(self, text):
        """Client entry point: broadcast through the room."""
        if self.room is None:
            return 0
        delivered = yield Call(self.room, "broadcast", text, size=300)
        return delivered


class Room(Actor):
    """A chat room: broadcasts each message to every member."""

    COMPUTE = {"broadcast": 40e-6}

    def __init__(self):
        super().__init__()
        self.members = []

    def add_member(self, user_ref):
        self.members.append(user_ref)
        return len(self.members)

    def broadcast(self, text):
        acks = yield All([
            Call(u, "receive", text, size=300, response_size=32)
            for u in self.members
        ])
        return len(acks)


def main():
    runtime = ActorRuntime(ClusterConfig(num_servers=4, seed=42))
    runtime.register_actor("user", User)
    runtime.register_actor("room", Room)

    # 12 rooms x 6 users. Virtual actors: the first message activates them.
    rooms = [runtime.ref("room", r) for r in range(12)]
    users = {r: [runtime.ref("user", f"{r}-{u}") for u in range(6)]
             for r in range(12)}
    for r, room in enumerate(rooms):
        for user in users[r]:
            # Joining twice would duplicate the membership entry, so the
            # request is declared non-replayable.
            runtime.client_request(room, "add_member", user, idempotent=False)
            runtime.client_request(user, "join", room)
    runtime.run(until=1.0)

    # Attach ActOp's locality optimizer (fast control loop for the demo).
    actop = ActOp(runtime, ActOpConfig(partitioning=PartitioningConfig(
        round_period=1.0, stats_period=0.5, cooldown=0.5,
        delta=8, candidate_fraction=0.5, candidate_max=32, warmup=1.0,
    )))
    actop.start()

    # Drive chat traffic: each second, every room gets a few messages.
    request_rng = runtime.rng.stream("demo.requests")

    def chat_tick():
        for r in range(12):
            speaker = users[r][request_rng.randrange(6)]
            runtime.client_request(speaker, "say", "hello", size=300)
        runtime.sim.schedule(0.05, chat_tick)

    runtime.sim.schedule(0.0, chat_tick)

    print(f"{'t(s)':>5} {'remote share':>13} {'migrations':>11} "
          f"{'median lat (ms)':>16}")
    last_local = last_remote = 0
    for t in range(5, 41, 5):
        runtime.reset_latency_stats()
        runtime.run(until=float(t))
        dl = runtime.msgs_local - last_local
        dr = runtime.msgs_remote - last_remote
        last_local, last_remote = runtime.msgs_local, runtime.msgs_remote
        share = dr / (dl + dr) if dl + dr else 0.0
        median = runtime.client_latency.median * 1000
        print(f"{t:>5} {share:>13.2f} {runtime.migrations_total:>11} "
              f"{median:>16.2f}")

    print()
    print("Final placement (room -> users co-located?):")
    colocated = 0
    for r, room in enumerate(rooms):
        room_server = runtime.locate(room.id)
        user_servers = [runtime.locate(u.id) for u in users[r]]
        ok = all(s == room_server for s in user_servers)
        colocated += ok
    print(f"  {colocated}/12 rooms fully co-located with their users")
    print(f"  total migrations: {runtime.migrations_total}")


if __name__ == "__main__":
    main()
