"""Fig. 11(a): optimized thread allocation on the Heartbeat benchmark.

Paper setup: one server, loads 10K / 12.5K / 15K req/s.  Findings:

* latency improvements grow with load — at 15K req/s the 99th percentile
  improves 68% and the median 58%;
* the controller allocates 2 client senders at every load, 3 workers at
  10K/12.5K and 4 workers at 15K — small allocations, far below the
  default thread-per-stage-per-core.
"""

from conftest import heartbeat_result

from repro.bench.harness import improvement
from repro.bench.reporting import render_table

RATES = (10_000.0, 12_500.0, 15_000.0)
PAPER = {10_000.0: (30.0, 45.0, 40.0), 12_500.0: (45.0, 55.0, 55.0),
         15_000.0: (58.0, 70.0, 68.0)}


def _sweep():
    return {
        rate: (heartbeat_result(rate, thread_allocation=False),
               heartbeat_result(rate, thread_allocation=True))
        for rate in RATES
    }


def test_fig11a_heartbeat_thread_allocation(benchmark, show):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    improvements = {}
    for rate, (base, opt) in sweep.items():
        med = improvement(base.median, opt.median)
        p95 = improvement(base.p95, opt.p95)
        p99 = improvement(base.p99, opt.p99)
        improvements[rate] = (med, p95, p99)
        paper_med, _, paper_p99 = PAPER[rate]
        rows.append([
            f"{rate:.0f}", paper_med, med, paper_p99, p99,
            str(opt.thread_allocation),
        ])
    show(render_table(
        ["req/s", "paper med%", "ours med%", "paper p99%", "ours p99%",
         "ActOp allocation"],
        rows,
        title="Fig. 11(a) — thread-allocation improvement by load",
        floatfmt=".1f",
    ))
    benchmark.extra_info["improvements"] = {
        f"{k:.0f}": tuple(round(x, 1) for x in v)
        for k, v in improvements.items()
    }

    # Shape assertions:
    # 1. gains grow with load;
    assert improvements[15_000.0][0] > improvements[10_000.0][0]
    assert improvements[15_000.0][2] > improvements[10_000.0][2]
    # 2. at the top load the gains are substantial (paper: 58% / 68%);
    assert improvements[15_000.0][0] > 35.0
    assert improvements[15_000.0][2] > 50.0
    # 3. the chosen allocation is small — total threads at or under the
    #    core count, vs the default 8 per stage;
    top_alloc = sweep[15_000.0][1].thread_allocation
    assert sum(top_alloc.values()) <= 8
    # 4. and worker threads do not shrink as load grows.
    workers = [sweep[r][1].thread_allocation["worker"] for r in RATES]
    assert workers == sorted(workers)
