"""Fig. 10(a): partitioning-algorithm convergence on Halo Presence.

Paper findings: starting from random placement (~90% of actor-to-actor
messages remote), the share of remote messages stabilizes at ~12% within
10 minutes; actor movements spike initially and settle at ~1K/min — about
1% of actors per minute, matching the workload's graph change rate.

Our scaled run compresses game durations ~12x, so convergence and the
steady-state movement rate are proportionally faster; the *shape* — high
plateau, fast drop, low stable tail with a nonzero churn-tracking
movement rate — is the reproduction target.
"""

from conftest import halo_result

from repro.bench.reporting import render_table


def test_fig10a_convergence(benchmark, show):
    result = benchmark.pedantic(
        lambda: halo_result(load_fraction=1.0, partitioning=True),
        rounds=1, iterations=1,
    )
    sampler = result.sampler
    assert sampler is not None

    rows = [
        [f"{t:.0f}", share, int(moves)]
        for (t, share), moves in zip(
            sampler.remote_share.items(), sampler.migrations_per_window.values
        )
    ]
    show(render_table(
        ["t (s)", "remote msg share", "migrations in window"],
        rows,
        title="Fig. 10(a) — convergence (paper: 0.90 -> ~0.12 plateau; "
              "movements settle at ~1%/min of actors)",
    ))

    shares = sampler.remote_share.values
    migrations = sampler.migrations_per_window.values
    benchmark.extra_info.update(
        first_share=round(shares[0], 3),
        tail_share=round(sampler.remote_share.tail_mean(0.4), 3),
    )

    # Shape assertions:
    # 1. starts near the random-placement level;
    assert shares[0] > 0.55
    # 2. converges to a low plateau (paper: ~0.12);
    tail = sampler.remote_share.tail_mean(0.4)
    assert tail < 0.25
    # 3. the bulk of migration happens early...
    early = sum(migrations[: len(migrations) // 3])
    late = sum(migrations[-len(migrations) // 3:])
    assert early > late
    # 4. ...but steady-state movement stays nonzero (tracking churn).
    assert late > 0
