"""Shared machinery for the reproduction benchmarks.

Expensive cluster experiments are cached at module scope so that several
figures derived from the same run (e.g. Fig. 10b and 10c) do not repeat
it.  Scale knobs:

* ``ACTOP_BENCH_SCALE`` (float, default 1.0) — multiplies player counts
  and measurement durations.  0.5 halves everything for a quick pass;
  2.0 pushes toward paper scale.
* Timing note: pytest-benchmark records wall time of each experiment,
  but the deliverable of this suite is the printed paper-vs-measured
  tables (captured with ``-s`` or in the benchmark output log).
"""

from __future__ import annotations

import os
from typing import Optional

import pytest

from repro.bench.harness import (
    ExperimentResult,
    HaloExperiment,
    HeartbeatExperiment,
)

BENCH_SCALE = float(os.environ.get("ACTOP_BENCH_SCALE", "1.0"))

_HALO_CACHE: dict[tuple, ExperimentResult] = {}
_HEARTBEAT_CACHE: dict[tuple, ExperimentResult] = {}


def scaled_players(base: int = 2_000) -> int:
    return max(400, int(base * BENCH_SCALE))


def scaled_duration(base: float) -> float:
    return max(30.0, base * BENCH_SCALE)


def halo_result(
    load_fraction: float = 1.0,
    partitioning: bool = False,
    thread_allocation: bool = False,
    players: Optional[int] = None,
    num_servers: int = 10,
    seed: int = 1,
    warmup: float = 80.0,
    duration: float = 80.0,
    max_receiver_queue: Optional[int] = None,
) -> ExperimentResult:
    """Run (or fetch from cache) one Halo experiment.

    Every run records the convergence time series (10 s windows) and a
    20-point latency CDF so all figures derived from the same
    configuration share one cached run.
    """
    players = players if players is not None else scaled_players()
    key = (
        load_fraction, partitioning, thread_allocation, players, num_servers,
        seed, warmup, duration, max_receiver_queue,
    )
    if key not in _HALO_CACHE:
        exp = HaloExperiment(
            load_fraction=load_fraction,
            players=players,
            partitioning=partitioning,
            thread_allocation=thread_allocation,
            num_servers=num_servers,
            seed=seed,
            max_receiver_queue=max_receiver_queue,
        )
        _HALO_CACHE[key] = exp.run(
            warmup=scaled_duration(warmup),
            duration=scaled_duration(duration),
            sample_period=10.0,
            cdf_points=20,
        )
        # Keep a handle on the runtime for benches that inspect silo
        # internals (placement counters, allocations).
        _HALO_CACHE[key].runtime = exp.runtime  # type: ignore[attr-defined]
    return _HALO_CACHE[key]


def heartbeat_result(
    request_rate: float,
    thread_allocation: bool,
    seed: int = 3,
    cdf_points: int = 0,
) -> ExperimentResult:
    key = (request_rate, thread_allocation, seed, cdf_points)
    if key not in _HEARTBEAT_CACHE:
        exp = HeartbeatExperiment(
            request_rate=request_rate, thread_allocation=thread_allocation,
            seed=seed,
        )
        _HEARTBEAT_CACHE[key] = exp.run(cdf_points=cdf_points)
        _HEARTBEAT_CACHE[key].runtime = exp.runtime  # type: ignore[attr-defined]
    return _HEARTBEAT_CACHE[key]


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so tables land in the report."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _show
