"""Figs. 10(d) and 10(e): improvement and CPU across load levels.

Paper findings over loads 2K/4K/6K req/s (1/3, 2/3, and full of the
80%-CPU operating point):

* Fig. 10(d): ActOp's latency improvement grows with load — at 6K the
  99th percentile improves ~69%, the median ~42%;
* Fig. 10(e): ActOp cuts per-server CPU utilization by ~25% (relative)
  at low load and ~45% at high load, because co-location removes
  serialization work.
"""

from conftest import halo_result

from repro.bench.harness import improvement
from repro.bench.reporting import render_table

LOADS = (1 / 3, 2 / 3, 1.0)
PAPER_D = {  # load label -> (median %, p95 %, p99 %) improvements
    "1/3 (2K)": (20.0, 30.0, 35.0),
    "2/3 (4K)": (30.0, 45.0, 55.0),
    "3/3 (6K)": (42.0, 64.0, 69.0),
}
PAPER_E = {  # load label -> (baseline CPU %, ActOp CPU %)
    "1/3 (2K)": (33.0, 25.0),
    "2/3 (4K)": (55.0, 36.0),
    "3/3 (6K)": (80.0, 44.0),
}
LABELS = list(PAPER_D)


def _sweep():
    out = {}
    for load, label in zip(LOADS, LABELS):
        base = halo_result(load_fraction=load, partitioning=False)
        opt = halo_result(load_fraction=load, partitioning=True)
        out[label] = (base, opt)
    return out


def test_fig10d_latency_improvement_by_load(benchmark, show):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    improvements = []
    for label in LABELS:
        base, opt = sweep[label]
        med = improvement(base.median, opt.median)
        p95 = improvement(base.p95, opt.p95)
        p99 = improvement(base.p99, opt.p99)
        improvements.append((med, p95, p99))
        paper = PAPER_D[label]
        rows.append([label, paper[0], med, paper[1], p95, paper[2], p99])
    show(render_table(
        ["load", "paper med%", "ours med%", "paper p95%", "ours p95%",
         "paper p99%", "ours p99%"],
        rows,
        title="Fig. 10(d) — latency improvement vs load (higher is better)",
        floatfmt=".1f",
    ))
    benchmark.extra_info["improvements"] = [
        tuple(round(x, 1) for x in imp) for imp in improvements
    ]

    # Shape: real gains at every load, and the top-load gain exceeds the
    # low-load gain (the paper's "gains are higher as load increases").
    for med, p95, p99 in improvements:
        assert med > 5.0 and p99 > 5.0
    assert improvements[-1][0] > improvements[0][0]
    assert improvements[-1][2] > improvements[0][2]
    # At the top load the median improvement is substantial (paper 42%).
    assert improvements[-1][0] > 25.0


def test_fig10e_cpu_utilization_by_load(benchmark, show):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    reductions = []
    for label in LABELS:
        base, opt = sweep[label]
        paper_base, paper_opt = PAPER_E[label]
        reduction = improvement(base.cpu_utilization, opt.cpu_utilization)
        reductions.append(reduction)
        rows.append([
            label, paper_base, 100 * base.cpu_utilization,
            paper_opt, 100 * opt.cpu_utilization, reduction,
        ])
    show(render_table(
        ["load", "paper base CPU%", "ours base CPU%", "paper ActOp CPU%",
         "ours ActOp CPU%", "ours reduction %"],
        rows,
        title="Fig. 10(e) — CPU utilization vs load (lower is better)",
        floatfmt=".1f",
    ))
    benchmark.extra_info["cpu_reductions"] = [round(r, 1) for r in reductions]

    base_top, opt_top = sweep[LABELS[-1]]
    # Calibration anchor: baseline top load sits near 80% CPU.
    assert 0.70 <= base_top.cpu_utilization <= 0.92
    # Paper: 25-45% relative reduction, growing with load.
    assert reductions[-1] >= 25.0
    assert reductions[-1] >= reductions[0]
