"""Elastic autoscaling study: Stageflow under a flash crowd.

Two claims, measured on the route→enrich→transform inference pipeline
(:mod:`repro.workloads.stageflow`) over :mod:`repro.pools` actor pools:

1. **Autoscaling tracks demand at a fraction of the provisioned cost.**
   A flash crowd (4x the base rate for 8 s) hits a 2-silo cluster; the
   controller grows to the 6-silo ceiling, rides out the surge, and
   drains back to 2.  The autoscaled run must re-converge — post-recovery
   p99 within 2x of steady-state — while spending fewer silo-seconds
   than the peak-provisioned fixed fleet that is the only way to get the
   same post-surge latency without elasticity.  (The surge window itself
   is reported honestly: an elastic cluster pays a transient the
   peak-provisioned one does not — that is the cost side of the trade,
   quantified rather than hidden.)

2. **Load-aware routing beats oblivious round-robin on heterogeneous
   capacity.**  Round-robin keeps feeding a silo that computes 3x
   slower; the DPA-style policy sees the silo's reported worker-stage
   occupancy + CPU pressure (and its own in-flight counts) and routes
   around it.  On a *symmetric* bimodal mix DPA must still at least
   match round-robin — load-awareness is not allowed to cost anything
   when there is nothing to be aware of.

Both runs are seeded and deterministic; numbers land in EXPERIMENTS.md.
"""

from repro.autoscale import AutoscaleConfig
from repro.bench.harness import StageflowExperiment
from repro.bench.reporting import render_table
from repro.faults import FaultPlan
from repro.workloads.stageflow import StageflowConfig

SEED = 3
SERVERS = 6
PROCESSORS = 2
BASE_RATE = 300.0

WARMUP = 2.0
FLASH_AT = 10.0
FLASH_DURATION = 8.0
SETTLE = 8.0
POST = 10.0
SURGE_END = FLASH_AT + FLASH_DURATION + SETTLE   # 26.0
RUN_END = SURGE_END + POST                       # 36.0

AUTOSCALE = dict(period=0.5, low=0.35, high=0.70, min_silos=2,
                 initial_silos=2, cooldown=1.0, warmup=1.0)


def _flash_run(autoscaled: bool):
    exp = StageflowExperiment(
        config=StageflowConfig(curve="flash", base_rate=BASE_RATE,
                               flash_at=FLASH_AT,
                               flash_duration=FLASH_DURATION,
                               flash_multiplier=4.0),
        autoscale=AutoscaleConfig(**AUTOSCALE) if autoscaled else None,
        num_servers=SERVERS, processors=PROCESSORS, seed=SEED,
        label="autoscaled" if autoscaled else f"fixed-{SERVERS}",
    )
    windows = {
        "steady": exp.measure_window(WARMUP, FLASH_AT),
        "surge": exp.measure_window(FLASH_AT, SURGE_END),
        "post": exp.measure_window(SURGE_END, RUN_END),
    }
    return exp, windows


def test_flash_crowd_autoscale_vs_fixed():
    rows = []
    results = {}
    for autoscaled in (True, False):
        exp, windows = _flash_run(autoscaled)
        cost = exp.silo_seconds()
        results[exp.label] = (exp, windows, cost)
        for phase, r in windows.items():
            rows.append([exp.label, phase, r.requests, r.median * 1e3,
                         r.p99 * 1e3, 100 * r.cpu_utilization])
        rows.append([exp.label, "silo-seconds", "", "", "", cost])

    print()
    print(render_table(
        ["configuration", "window", "requests", "median ms", "p99 ms",
         "CPU % / cost"],
        rows,
        title=f"flash crowd 4x for {FLASH_DURATION:g}s — autoscaled "
              f"(2..{SERVERS} silos) vs peak-provisioned fixed-{SERVERS}",
    ))

    exp, auto, auto_cost = results["autoscaled"]
    _, fixed, fixed_cost = results[f"fixed-{SERVERS}"]
    ctrl = exp.controller

    # The controller actually scaled: out during the surge, back after.
    assert ctrl.grows >= 1, "flash crowd never triggered a grow plan"
    assert ctrl.shrinks >= 1, "cluster never drained back after the surge"
    assert ctrl.plans_committed == ctrl.plans_begun
    assert ctrl.active == AUTOSCALE["min_silos"], (
        f"did not return to the floor: {ctrl.active} silos active")

    # Re-convergence: post-recovery latency within 2x of steady state.
    assert auto["post"].p99 <= 2.0 * auto["steady"].p99, (
        f"post p99 {auto['post'].p99 * 1e3:.1f}ms vs steady "
        f"{auto['steady'].p99 * 1e3:.1f}ms")

    # Elasticity pays: strictly fewer silo-seconds than peak provisioning.
    assert auto_cost < fixed_cost, (
        f"autoscaled cost {auto_cost:.1f} >= fixed {fixed_cost:.1f}")

    # Sanity on the baseline: the fixed fleet absorbs the surge flat.
    assert fixed["post"].p99 <= 2.0 * fixed["steady"].p99
    print(f"\nautoscaled: {auto_cost:.1f} silo-seconds "
          f"({100 * (1 - auto_cost / fixed_cost):.0f}% below fixed "
          f"{fixed_cost:.1f}); post p99 {auto['post'].p99 * 1e3:.1f}ms vs "
          f"steady {auto['steady'].p99 * 1e3:.1f}ms; surge transient "
          f"{auto['surge'].p99 * 1e3:.0f}ms vs fixed "
          f"{fixed['surge'].p99 * 1e3:.0f}ms")


def _policy_run(policy: str, faults=None):
    exp = StageflowExperiment(
        config=StageflowConfig(curve="flat", base_rate=300.0,
                               heavy_fraction=0.25, policy=policy),
        autoscale=None, num_servers=2, processors=PROCESSORS,
        seed=SEED, faults=faults, label=policy,
    )
    return exp.measure_window(2.0, 17.0)


def test_dpa_beats_round_robin_on_slow_silo():
    """Heterogeneous capacity: one of two silos computes 3x slower for
    10 s.  Round-robin keeps sending it half the traffic; DPA routes
    around it on the reported contention signal."""
    rows = []
    results = {}
    for policy in ("round_robin", "dpa"):
        r = _policy_run(
            policy,
            faults=FaultPlan().slow_silo(4.0, 14.0, server=1, factor=3.0))
        results[policy] = r
        rows.append([policy, r.requests, r.median * 1e3, r.p99 * 1e3,
                     100 * r.cpu_utilization])

    print()
    print(render_table(
        ["policy", "requests", "median ms", "p99 ms", "CPU %"],
        rows,
        title="silo 1 of 2 slowed 3x during [4, 14) — 25% heavy mix",
    ))
    rr, dpa = results["round_robin"], results["dpa"]
    assert dpa.p99 < 0.5 * rr.p99, (
        f"dpa p99 {dpa.p99 * 1e3:.1f}ms not decisively better than "
        f"round_robin {rr.p99 * 1e3:.1f}ms")
    assert dpa.median < rr.median


def test_dpa_matches_round_robin_on_symmetric_cluster():
    """No asymmetry to exploit: load-awareness must cost ~nothing."""
    rr = _policy_run("round_robin")
    dpa = _policy_run("dpa")
    print(f"\nsymmetric: rr p50={rr.median * 1e3:.1f} "
          f"p99={rr.p99 * 1e3:.1f} | dpa p50={dpa.median * 1e3:.1f} "
          f"p99={dpa.p99 * 1e3:.1f}")
    assert dpa.median <= 1.25 * rr.median
    assert dpa.p99 <= 1.25 * rr.p99
