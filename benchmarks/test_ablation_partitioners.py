"""§4.1 design alternatives: distributed Alg. 1 vs the roads not taken.

The paper rules out (a) centralized partitioning — METIS-class quality
but minutes-to-hours of runtime on a single node holding the full graph —
and (b) fully unbatched per-vertex coordination (Ja-Be-Ja) — decent cuts
but object-level exchange volume that cannot track a fast-changing graph.

This ablation measures all three plus the random baseline on Halo-shaped
graphs of growing size: cut quality, migrations/swaps executed, and wall
time (showing the centralized cost curve bending upward).
"""

import random
import time

from repro.core.partitioning.offline import OfflinePartitioner
from repro.graph.generators import clustered_graph
from repro.graph.jabeja import jabeja_partition
from repro.graph.multilevel import multilevel_partition
from repro.graph.quality import cut_cost
from repro.graph.streaming import streaming_partition
from repro.bench.reporting import render_table

SIZES = [(50, 9), (150, 9), (400, 9)]  # (clusters, cluster size)
SERVERS = 8


def build(clusters, size):
    return clustered_graph(clusters, size, intra_weight=10.0,
                           inter_edges_per_cluster=1,
                           rng=random.Random(clusters))


def run_all():
    rows = []
    timings = {"alg1": [], "multilevel": [], "jabeja": []}
    for clusters, size in SIZES:
        graph = build(clusters, size)
        n = graph.num_vertices
        rng = random.Random(0)
        vertices = list(graph.vertices())
        rng.shuffle(vertices)
        base = {v: i % SERVERS for i, v in enumerate(vertices)}
        base_cut = cut_cost(graph, base)

        start = time.perf_counter()
        alg1 = OfflinePartitioner(graph, SERVERS, delta=8, k=64, seed=1,
                                  initial=dict(base))
        alg1.run(max_sweeps=40)
        t_alg1 = time.perf_counter() - start
        timings["alg1"].append(t_alg1)

        start = time.perf_counter()
        ml = multilevel_partition(graph, SERVERS, rng=random.Random(2))
        t_ml = time.perf_counter() - start
        timings["multilevel"].append(t_ml)

        start = time.perf_counter()
        jb = jabeja_partition(graph, SERVERS, rounds=25,
                              rng=random.Random(3), initial=dict(base))
        t_jb = time.perf_counter() - start
        timings["jabeja"].append(t_jb)

        # One-pass streaming placement ([31], same second author): the
        # best *activation-time* policy still leaves most of the cut on
        # the table for hub-and-spoke graphs under random arrival order —
        # the paper's "static actor assignment is insufficient" point.
        stream = streaming_partition(graph, SERVERS, heuristic="fennel",
                                     rng=random.Random(4))

        rows.append([
            n, f"{base_cut:.0f}",
            f"{alg1.cost:.0f}", f"{t_alg1:.2f}", alg1.total_migrations,
            f"{cut_cost(graph, ml):.0f}", f"{t_ml:.2f}",
            f"{cut_cost(graph, jb.assignment):.0f}", f"{t_jb:.2f}", jb.swaps,
            f"{cut_cost(graph, stream):.0f}",
        ])
    return rows, timings


def test_ablation_partitioner_comparison(benchmark, show):
    rows, timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    show(render_table(
        ["|V|", "random cut", "Alg.1 cut", "Alg.1 s", "Alg.1 moves",
         "multilevel cut", "ML s", "JaBeJa cut", "JBJ s", "JBJ swaps",
         "stream cut"],
        rows,
        title="§4.1 ablation — partitioner quality / cost / coordination "
              "volume (8 servers)",
    ))

    for row in rows:
        random_cut = float(row[1])
        alg1_cut = float(row[2])
        ml_cut = float(row[5])
        # Alg. 1 recovers most of the locality at every size...
        assert alg1_cut < 0.4 * random_cut
        # ...while the centralized pass with full information is the
        # quality ceiling (as in the paper's discussion).
        assert ml_cut <= alg1_cut * 1.05

    # Ja-Be-Ja's per-vertex swaps dwarf Alg. 1's batched migrations at
    # the largest size — the coordination volume §4.1 objects to.
    largest = rows[-1]
    assert int(largest[9]) > 2 * int(largest[4])
    # Streaming one-shot placement (no migration) cannot match the
    # migrating algorithm on hub-and-spoke graphs with random arrivals.
    for row in rows:
        assert float(row[10]) > float(row[2])
