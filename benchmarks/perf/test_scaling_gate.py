"""Peak-RSS scaling gate: memory regressions fail like latency ones.

Two modes:

* **CI artifact mode** — the ``scale-smoke`` workflow job runs
  ``repro perf --scaling --points 100000`` and exports the JSON path in
  ``ACTOP_SCALING_JSON``; this test then gates the already-measured
  points without re-running them.
* **Standalone mode** — no env var: measure a 10k-actor point in a
  fresh subprocess (so the pytest process's own RSS peak does not
  pollute the measurement) and gate that.

The threshold (``RSS_PER_ACTOR_GATE_BYTES``, ≲4 KB per actor over the
interpreter baseline) lives in :mod:`repro.bench.scale`; it is what
makes the paper's 10^6-actor population fit ~4 GB on one machine.
"""

import json
import os
import subprocess
import sys

from repro.bench import scale

SCALING_JSON = os.environ.get("ACTOP_SCALING_JSON")


def _measured_points():
    if SCALING_JSON:
        with open(SCALING_JSON) as fh:
            doc = json.load(fh)
        assert doc["kind"] == "scaling"
        assert doc["points"], "scaling artifact has no points"
        return doc["points"]
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(scale.__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "perf",
         "--scale-point", "10000", "--horizon", "10", "--json", "-"],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-500:]
    return [json.loads(proc.stdout)["point"]]


def test_scaling_points_pass_peak_rss_gate():
    points = _measured_points()
    failures = [v for p in points for v in scale.gate_violations(p)]
    assert not failures, "; ".join(failures)


def test_scaling_points_made_progress():
    """The gated run must be a real run, not a stillborn cluster."""
    for point in _measured_points():
        assert point["events"] > 10_000
        assert point["activations"] > 0
        assert point["population"] >= point["actors"] * 0.9
        assert point["requests_completed"] > 0
