"""Perf-regression harness: run the microbenchmark suite, print the
table, and emit the machine-readable JSON document.

Run with ``-s`` to see the table; set ``ACTOP_PERF_FULL=1`` for
full-sized runs (the default here is smoke-sized so the suite stays
minutes-fast).  The JSON is the artifact to paste into perf-PR
descriptions; compare against a baseline produced on the same machine:

    PYTHONPATH=src python -m repro perf --json before.json   # on main
    PYTHONPATH=src python -m repro perf --json after.json    # on the PR
"""

import json
import os

from repro.bench import perf

FULL = os.environ.get("ACTOP_PERF_FULL", "0") == "1"


def test_perf_suite_smoke(capsys):
    doc = perf.run_suite(smoke=not FULL, repeat=1)
    assert doc["schema"] == 2
    assert set(doc["benchmarks"]) == set(perf.BENCHMARKS)
    for name, result in doc["benchmarks"].items():
        assert result["units"] > 0, name
        assert result["rate_per_sec"] > 0, name
        # Schema 2: every benchmark carries its memory trajectory.
        assert result["peak_rss_bytes"] > 0, name
        assert "alloc_blocks_delta" in result, name
    # The document must round-trip as JSON (it is the PR artifact).
    assert json.loads(perf.main_json(doc)) == doc
    with capsys.disabled():
        print()
        print(perf.render_results(doc))


def test_event_loop_throughput_floor():
    """Perf regression tripwire: the optimized engine sustains well over
    the seed engine's ~356K events/sec (measured at PR 1; the acceptance
    bar was 1.5x = 534K).  The floor here is deliberately loose so slow
    CI machines do not flake, while a return to seed-level throughput
    still fails."""
    result = perf.run_benchmark("event_loop", smoke=True, repeat=3)
    assert result["rate_per_sec"] > 400_000


def test_spacesaving_offer_heap_stays_bounded():
    """The offer() churn fix: in-place increments must not grow the
    lazily-invalidated min-heap.  Pre-fix the heap held one entry per
    offer (30k in smoke mode); post-fix it is O(capacity)."""
    result = perf.run_benchmark("spacesaving", smoke=True, repeat=1)
    capacity = result["extras"]["capacity"]
    assert result["extras"]["dict_final_heap_len"] <= 2 * capacity + 64
    assert result["extras"]["array_final_heap_len"] <= 2 * capacity + 64
    assert result["extras"]["array_rate_per_sec"] > 0


def test_cancellation_storm_stays_compact():
    result = perf.run_benchmark("cancellation", smoke=True, repeat=1)
    # The benchmark reports the engine's final queue size; a leak of the
    # 10k cancelled timers would show up here.
    assert result["extras"]["final_queue_size"] < 1_000
