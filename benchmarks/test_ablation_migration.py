"""§4.3 ablation: opportunistic migration lands actors on the right server.

The paper's migration avoids global coordination: the source silo only
deactivates the actor and leaves location-cache hints on itself and the
destination; the *next message* re-places the actor.  "Intuitively, we
probabilistically guarantee that A is placed in the 'right' server.  This
working assumption is verified in our experiments."

This bench verifies the same assumption in our runtime: during a
partitioned Halo run, what fraction of re-placements were driven by a
hint (landing exactly on the planned destination) versus falling back to
caller-local placement.
"""

from conftest import halo_result

from repro.bench.reporting import render_table


def test_opportunistic_migration_hint_hit_rate(benchmark, show):
    result = benchmark.pedantic(
        lambda: halo_result(load_fraction=1.0, partitioning=True),
        rounds=1, iterations=1,
    )
    runtime = result.runtime  # attached by the conftest cache

    hinted = sum(s.placements_hinted for s in runtime.silos)
    at_caller = sum(s.placements_at_caller for s in runtime.silos)
    new = sum(s.placements_new for s in runtime.silos)
    replacements = hinted + at_caller
    hit_rate = hinted / replacements if replacements else 0.0

    show(render_table(
        ["placement path", "count", "share of re-placements"],
        [
            ["hint (landed on planned destination)", hinted,
             f"{100 * hit_rate:.1f}%"],
            ["caller-local fallback", at_caller,
             f"{100 * (1 - hit_rate):.1f}%"],
            ["brand-new actor via policy", new, "-"],
        ],
        title="§4.3 ablation — opportunistic migration placement outcomes",
    ))
    benchmark.extra_info["hint_hit_rate"] = round(hit_rate, 3)

    # The working assumption: most re-placements follow the hint, because
    # most traffic to a migrated actor comes from the destination server.
    assert replacements > 100
    assert hit_rate > 0.6
