"""Figs. 10(b) and 10(c): latency CDFs at the top load.

Paper numbers at 6K req/s (their 80%-CPU point):

* Fig. 10(b), end-to-end client latency: median 41 -> 24 ms,
  99th percentile 736 -> 225 ms (>3x better).
* Fig. 10(c), server-to-server (actor-to-actor call) latency:
  median 5 -> 3 ms, 99th percentile 297 -> 56 ms.

We run the same A/B at our calibrated 80%-CPU operating point and
compare both distributions.
"""

from conftest import halo_result

from repro.bench.reporting import render_table


def _pair():
    baseline = halo_result(load_fraction=1.0, partitioning=False)
    optimized = halo_result(load_fraction=1.0, partitioning=True)
    return baseline, optimized


def test_fig10b_end_to_end_latency_cdf(benchmark, show):
    baseline, optimized = benchmark.pedantic(_pair, rounds=1, iterations=1)

    show(render_table(
        ["metric", "paper base", "paper ActOp", "ours base", "ours ActOp"],
        [
            ["median ms", 41.0, 24.0, baseline.median * 1e3, optimized.median * 1e3],
            ["p95 ms", 450.0, 100.0, baseline.p95 * 1e3, optimized.p95 * 1e3],
            ["p99 ms", 736.0, 225.0, baseline.p99 * 1e3, optimized.p99 * 1e3],
        ],
        title="Fig. 10(b) — end-to-end latency, top load",
    ))
    rows = [
        [f"{v * 1e3:.2f}", f"{q:.2f}"] for v, q in baseline.cdf[:: max(1, len(baseline.cdf) // 10)]
    ]
    show(render_table(["baseline latency ms", "CDF"], rows))
    rows = [
        [f"{v * 1e3:.2f}", f"{q:.2f}"] for v, q in optimized.cdf[:: max(1, len(optimized.cdf) // 10)]
    ]
    show(render_table(["ActOp latency ms", "CDF"], rows))

    benchmark.extra_info.update(
        base_median_ms=round(baseline.median * 1e3, 2),
        actop_median_ms=round(optimized.median * 1e3, 2),
        base_p99_ms=round(baseline.p99 * 1e3, 2),
        actop_p99_ms=round(optimized.p99 * 1e3, 2),
    )

    # Who wins, and by roughly what factor (paper: 1.7x median, 3.3x p99).
    assert optimized.median < 0.75 * baseline.median
    assert optimized.p99 < 0.70 * baseline.p99


def test_fig10c_server_to_server_latency_cdf(benchmark, show):
    baseline, optimized = benchmark.pedantic(_pair, rounds=1, iterations=1)

    show(render_table(
        ["metric", "paper base", "paper ActOp", "ours base", "ours ActOp"],
        [
            ["median ms", 5.0, 3.0, baseline.call_median * 1e3,
             optimized.call_median * 1e3],
            ["p99 ms", 297.0, 56.0, baseline.call_p99 * 1e3,
             optimized.call_p99 * 1e3],
        ],
        title="Fig. 10(c) — actor-to-actor call latency, top load",
    ))
    benchmark.extra_info.update(
        base_call_median_ms=round(baseline.call_median * 1e3, 3),
        actop_call_median_ms=round(optimized.call_median * 1e3, 3),
    )

    # Local calls skip serialization and queues: both the bulk of the
    # distribution and the tail must improve.
    assert optimized.call_median < 0.8 * baseline.call_median
    assert optimized.call_p99 < 0.8 * baseline.call_p99
