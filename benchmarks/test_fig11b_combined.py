"""Fig. 11(b): partitioning and thread allocation combined.

Paper setup: Halo Presence, 100K players, 6K req/s.  Findings:

* partitioning alone is the primary win;
* adding thread allocation gives a further ~21% median / ~9% p99 cut;
* in total ActOp improves the median by 55% and the p99 by 75%;
* the best thread allocation *depends on partitioning*: with random
  placement the controller picks 5 workers / 2 server senders / 1 client
  sender; once actors are co-located the I/O stages shed load and it
  picks 6 workers / 1 server sender / 1 client sender — more application
  threads, fewer serialization threads.
"""

from conftest import halo_result

from repro.bench.harness import improvement
from repro.bench.reporting import render_table


def _three_way():
    baseline = halo_result(load_fraction=1.0, partitioning=False)
    part_only = halo_result(load_fraction=1.0, partitioning=True)
    combined = halo_result(load_fraction=1.0, partitioning=True,
                           thread_allocation=True)
    threads_only = halo_result(load_fraction=1.0, partitioning=False,
                               thread_allocation=True)
    return baseline, part_only, combined, threads_only


def test_fig11b_combined_optimizations(benchmark, show):
    baseline, part_only, combined, threads_only = benchmark.pedantic(
        _three_way, rounds=1, iterations=1,
    )

    rows = []
    for label, res in (("baseline", baseline),
                       ("threads only", threads_only),
                       ("partitioning only", part_only),
                       ("both (ActOp)", combined)):
        rows.append([
            label,
            res.median * 1e3, res.p99 * 1e3,
            improvement(baseline.median, res.median),
            improvement(baseline.p99, res.p99),
            100 * res.cpu_utilization,
        ])
    show(render_table(
        ["configuration", "median ms", "p99 ms", "med improv %",
         "p99 improv %", "CPU %"],
        rows,
        title="Fig. 11(b) — combining both optimizations "
              "(paper: partitioning primary; both = 55% med / 75% p99)",
        floatfmt=".1f",
    ))
    show("\n  worker/sender allocation under the controller:")
    show(f"    with random placement: {threads_only.thread_allocation}")
    show(f"    with partitioning:     {combined.thread_allocation}")
    benchmark.extra_info.update(
        combined_median_improv=round(improvement(baseline.median,
                                                 combined.median), 1),
        combined_p99_improv=round(improvement(baseline.p99, combined.p99), 1),
    )

    # Shape assertions:
    # 1. every optimized configuration beats the baseline;
    assert part_only.median < baseline.median
    assert combined.median < baseline.median
    # 2. partitioning is the primary factor (beats threads-only);
    assert part_only.median < threads_only.median
    # 3. combining at least preserves partitioning's latency while
    #    halving the remaining CPU (deviation note: the paper reports a
    #    further 21%/9% latency cut on top of partitioning; our
    #    partitioned cluster is more relieved than theirs — ~20% CPU vs
    #    their 44% — so the controller's benefit shows up as CPU, not
    #    latency, at this operating point);
    assert combined.median <= part_only.median * 1.06
    assert combined.p99 <= part_only.p99 * 1.06
    assert combined.cpu_utilization < 0.75 * part_only.cpu_utilization
    # 4. the controller shifts threads from serialization stages to
    #    workers once partitioning removes remote traffic.
    assert (combined.thread_allocation["server_sender"]
            <= threads_only.thread_allocation["server_sender"])
    assert (combined.thread_allocation["worker"]
            >= threads_only.thread_allocation["worker"] - 1)
    # 5. total improvement is substantial (paper: 55% median, 75% p99).
    assert improvement(baseline.median, combined.median) > 30.0
