"""Fig. 7: queue-length-based thread control oscillates.

Paper setup (§5.1): a 6-stage SEDA emulator; every 30 s, any stage with a
queue longer than Th=100 gains a thread and any below Tl=10 loses one.
Paper findings: queue lengths of the bottleneck stages grow until the
threshold trips, then thread allocations and queues "flip" — persistent
fluctuation in both (Figs. 7a/7b) — because queue length responds to
capacity through the violently non-linear rho/(1-rho).

We build the same emulator, run the same controller, and quantify the
oscillation (direction flips in per-stage thread counts, queue-length
swings).  As the counterpoint, the same pipeline under ActOp's
model-based controller converges and stays put.
"""

from repro.core.threads.controller import ModelBasedController, QueueLengthController
from repro.seda.emulator import SedaEmulator, StageProfile
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.bench.reporting import render_table

# Six stages with heterogeneous demands; total CPU demand ~6.4 of 8
# cores, so capacity is tight and thread placement matters.
PROFILES = [
    StageProfile("s1", compute=0.0020, threads=2),
    StageProfile("s2", compute=0.0035, threads=2),
    StageProfile("s3", compute=0.0015, threads=2),
    StageProfile("s4", compute=0.0040, threads=2),
    StageProfile("s5", compute=0.0010, threads=2),
    StageProfile("s6", compute=0.0025, threads=2),
]
ARRIVAL_RATE = 440.0
CONTROL_PERIOD = 30.0
HORIZON = 450.0


def direction_flips(values):
    """Count sign changes in the first difference of a series."""
    deltas = [b - a for a, b in zip(values, values[1:]) if b != a]
    flips = sum(
        1 for a, b in zip(deltas, deltas[1:]) if (a > 0) != (b > 0)
    )
    return flips


def run_queue_controller():
    sim = Simulator()
    emu = SedaEmulator(sim, PROFILES, ARRIVAL_RATE, processors=8,
                       rng=RngRegistry(17))
    ctrl = QueueLengthController(sim, emu.server, period=CONTROL_PERIOD,
                                 high_threshold=100, low_threshold=10)
    emu.start()
    ctrl.start()
    sim.run(until=HORIZON)
    return ctrl, emu


def run_model_controller():
    sim = Simulator()
    emu = SedaEmulator(sim, PROFILES, ARRIVAL_RATE, processors=8,
                       rng=RngRegistry(17))
    ctrl = ModelBasedController(sim, emu.server, eta=1e-3,
                                period=CONTROL_PERIOD, min_events=10)
    emu.start()
    ctrl.start()
    sim.run(until=HORIZON)
    return ctrl, emu


def test_fig7_queue_length_controller_oscillates(benchmark, show):
    (q_ctrl, q_emu), (m_ctrl, m_emu) = benchmark.pedantic(
        lambda: (run_queue_controller(), run_model_controller()),
        rounds=1, iterations=1,
    )

    rows = []
    total_q_flips = total_m_flips = 0
    for profile in PROFILES:
        name = profile.name
        q_threads = q_ctrl.thread_history[name].values
        m_threads = m_ctrl.thread_history[name].values
        q_queues = q_ctrl.queue_history[name].values
        qf, mf = direction_flips(q_threads), direction_flips(m_threads)
        total_q_flips += qf
        total_m_flips += mf
        rows.append([
            name, f"{min(q_threads)}-{max(q_threads)}", qf,
            int(max(q_queues)),
            f"{min(m_threads)}-{max(m_threads)}", mf,
        ])
    show(render_table(
        ["stage", "queue-ctrl threads", "flips", "max queue",
         "model-ctrl threads", "flips"],
        rows,
        title="Fig. 7 — queue-length controller vs ActOp model-based "
              f"({HORIZON:.0f}s, control period {CONTROL_PERIOD:.0f}s)",
    ))
    show(f"\n  total thread-allocation direction flips: "
         f"queue-based={total_q_flips}, model-based={total_m_flips}")
    show(f"  mean request latency: queue-based={q_emu.latency.mean*1000:.1f} ms, "
         f"model-based={m_emu.latency.mean*1000:.1f} ms")
    benchmark.extra_info.update(
        queue_flips=total_q_flips, model_flips=total_m_flips,
    )

    # Paper's qualitative findings:
    # 1. the queue-length controller keeps fluctuating,
    assert total_q_flips >= 6
    # 2. queues repeatedly grow to the threshold region,
    assert any(
        max(q_ctrl.queue_history[p.name].values) > 100 for p in PROFILES
    )
    # 3. the model-based controller is (near-)stable once converged,
    assert total_m_flips <= total_q_flips / 3
    # 4. and serves the same load with lower latency.
    assert m_emu.latency.mean < q_emu.latency.mean
