"""§5.4 ablation: the alpha trick vs direct OS wait tracing vs truth.

The paper's estimator infers per-thread service rates s_i and CPU
fractions beta_i from observable (z, x) alone, assuming the ready/compute
ratio alpha is uniform across stages; §5.4 notes that platforms with OS
tracing (ETW) could measure blocking time w_i directly instead.

This ablation runs the blocking-I/O Heartbeat variant on a live silo and
compares three parameter sets against the simulator's ground truth:

* **alpha** — the paper's production path (no OS support needed);
* **direct** — §5.4's ETW alternative (w_i measured);
* **truth**  — computed from the hidden per-event wait/ready times.

The claim under test: the alpha estimates are close enough that the
optimizer's resulting *thread allocation* matches the one computed from
the true parameters.
"""

from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.core.threads.estimator import (
    estimate_stage_loads,
    estimate_stage_loads_direct,
    measure_windows,
)
from repro.core.threads.model import ThreadAllocationProblem
from repro.core.threads.optimizer import solve_integer
from repro.queueing.jackson import StageLoad
from repro.workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload
from repro.bench.reporting import render_table

RATE = 2_500.0
IO_WAIT = 0.002  # 2 ms of synchronous blocking per beat


def run_measurement():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=3))
    workload = HeartbeatWorkload(
        rt, HeartbeatConfig(num_monitors=400, request_rate=RATE,
                            io_wait=IO_WAIT)
    )
    workload.start()
    rt.run(until=10.0)
    server = rt.silos[0].server
    server.begin_window()
    rt.run(until=40.0)
    windows = server.end_window()

    alpha_loads = estimate_stage_loads(
        measure_windows(windows, blocking_stages=("worker",))
    )
    direct_loads = estimate_stage_loads_direct(
        measure_windows(windows, blocking_stages=("worker",),
                        os_wait_tracing=True)
    )
    truth_loads = []
    for name, w in windows.items():
        if w.mean_x <= 0:
            truth_loads.append(StageLoad(0.0, 1e7, 1.0, name=name))
            continue
        busy = w.mean_x + w.mean_wait
        truth_loads.append(
            StageLoad(w.arrival_rate, 1.0 / busy, w.mean_x / busy, name=name)
        )
    return windows, alpha_loads, direct_loads, truth_loads


def allocation_for(loads):
    problem = ThreadAllocationProblem(stages=loads, processors=8, eta=1e-4)
    return solve_integer(problem)


def test_ablation_estimator_modes(benchmark, show):
    windows, alpha_loads, direct_loads, truth_loads = benchmark.pedantic(
        run_measurement, rounds=1, iterations=1,
    )

    rows = []
    for a, d, t in zip(alpha_loads, direct_loads, truth_loads):
        rows.append([
            a.name,
            1e6 / t.service_rate_per_thread,
            1e6 / a.service_rate_per_thread,
            1e6 / d.service_rate_per_thread,
            t.cpu_fraction, a.cpu_fraction, d.cpu_fraction,
        ])
    show(render_table(
        ["stage", "true 1/s (us)", "alpha 1/s", "direct 1/s",
         "true beta", "alpha beta", "direct beta"],
        rows,
        title="§5.4 ablation — estimator modes on a blocking-I/O workload",
        floatfmt=".3g",
    ))

    by_name = {t.name: (a, d, t) for a, d, t in
               zip(alpha_loads, direct_loads, truth_loads)}
    worker_a, worker_d, worker_t = by_name["worker"]
    # direct mode is (near-)exact by construction
    assert abs(worker_d.cpu_fraction - worker_t.cpu_fraction) < 0.02
    # the alpha inference lands close on both parameters
    assert abs(worker_a.cpu_fraction - worker_t.cpu_fraction) < 0.15
    ratio = (worker_a.service_rate_per_thread
             / worker_t.service_rate_per_thread)
    assert 0.8 < ratio < 1.25
    # and, decisively, yields the same integer thread allocation
    alloc_alpha = allocation_for(alpha_loads)
    alloc_truth = allocation_for(truth_loads)
    show(f"\n  allocation from alpha estimates: {alloc_alpha}")
    show(f"  allocation from ground truth:    {alloc_truth}")
    assert alloc_alpha == alloc_truth
