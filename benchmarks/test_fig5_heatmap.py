"""Fig. 5: single-server latency under different thread allocations.

Paper setup: counter app at 15K req/s, sweeping worker and sender threads
over [2..8]^2 with the receiver pool fixed.  Paper findings:

* the allocation landscape is a valley: too few threads starves stages,
  too many pays oversubscription — best (2W, 3S) at 9.9 ms vs worst
  (8W, 6S) at 38.2 ms, a ~4x spread;
* the Orleans default (8 workers, 8 senders) is among the worst cells.

We sweep the same grid at our calibrated near-saturation rate (22K; see
test_fig4_breakdown for the operating-point note).  The default full run
uses a {2,3,4,6,8}^2 subgrid; set ACTOP_FIG5_FULL=1 for all 49 cells.
"""

import os

from repro.bench.harness import CounterExperiment
from repro.bench.reporting import render_heatmap

RATE = 22_000.0
GRID = [2, 3, 4, 5, 6, 7, 8] if os.environ.get("ACTOP_FIG5_FULL") else [2, 3, 4, 6, 8]

PAPER_BEST = (2, 3, 9.9)
PAPER_WORST = (8, 6, 38.2)


def run_cell(workers: int, senders: int) -> float:
    exp = CounterExperiment(
        request_rate=RATE,
        threads={
            "receiver": 8,
            "worker": workers,
            "server_sender": 1,
            "client_sender": senders,
        },
    )
    result = exp.run(warmup=6.0, duration=12.0)
    return result.median * 1000  # ms, time-scale normalized


def test_fig5_thread_allocation_heatmap(benchmark, show):
    def sweep():
        return {
            (w, s): run_cell(w, s) for w in GRID for s in GRID
        }

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    values = [[grid[(w, s)] for s in GRID] for w in GRID]
    show(render_heatmap(
        GRID, GRID, values,
        title=f"Fig. 5 — median latency (ms) at {RATE:.0f} req/s "
              f"(paper: best {PAPER_BEST[2]} ms at {PAPER_BEST[:2]}, "
              f"worst {PAPER_WORST[2]} ms at {PAPER_WORST[:2]})",
        row_title="worker threads", col_title="sender threads",
        floatfmt=".2f",
    ))

    best_cell = min(grid, key=grid.get)
    worst_cell = max(grid, key=grid.get)
    best, worst = grid[best_cell], grid[worst_cell]
    default = grid[(8, 8)]
    show(f"\n  best {best:.2f} ms at {best_cell}; worst {worst:.2f} ms at "
         f"{worst_cell}; Orleans default (8,8) = {default:.2f} ms")
    benchmark.extra_info.update(
        best_cell=str(best_cell), best_ms=round(best, 2),
        worst_cell=str(worst_cell), worst_ms=round(worst, 2),
        default_ms=round(default, 2),
    )

    # Shape assertions from the paper:
    # 1. allocation matters: a clear spread between best and worst;
    assert worst > 1.6 * best
    # 2. the default 8x8 allocation is not the optimum;
    assert default > 1.1 * best
    # 3. the optimum is an interior, modest allocation — neither the
    #    most starved nor the most oversubscribed corner.
    assert best_cell not in ((GRID[0], GRID[0]), (8, 8))
