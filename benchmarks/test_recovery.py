"""Recovery time: silo crash + restart under the full resilience stack.

The §2 contract, measured: when a silo dies, its actors re-activate on
the survivors at their next call (no request hangs — callers see bounded
timeouts and the retry layer re-dispatches); when it returns, the
placement flow re-populates it.  The recovery criterion mirrors the
``repro faults`` CLI: the cluster's remote-message fraction — its
locality fingerprint — must re-converge to within 10% of the pre-fault
value once the fault clears.

Runs the Halo cluster with the §4 partitioning optimizer on, so the
bench also shows ActOp re-colocating the displaced actors after the
topology heals.
"""

from repro.bench.harness import HaloExperiment
from repro.bench.reporting import render_table
from repro.faults import FaultPlan, ResilienceConfig, RetryPolicy

VICTIM = 3
WARMUP = 40.0          # includes the partitioner's own warmup
PRE_WINDOW = 20.0      # [40, 60)
T_KILL = 65.0
T_RESTART = 80.0
SETTLE_UNTIL = 100.0   # fault phase [60, 100)
POST_WINDOW = 20.0     # [100, 120)


def _run():
    exp = HaloExperiment(
        load_fraction=0.7,
        players=1_000,
        partitioning=True,
        seed=1,
        resilience=ResilienceConfig(
            call_timeout=0.5,
            retry=RetryPolicy(max_attempts=3)),
        faults=FaultPlan().crash(T_KILL, VICTIM).restart(T_RESTART, VICTIM),
        label="recovery",
    )
    rt = exp.runtime
    ts = exp.time_scale
    exp.workload.start()
    exp.cluster.start()
    rt.run(until=WARMUP)

    def window(until):
        rt.reset_latency_stats()
        local0, remote0 = rt.msgs_local, rt.msgs_remote
        timed0, retry0 = rt.requests_timed_out, rt.request_retries
        fail0 = rt.failovers
        rt.run(until=until)
        lat = rt.client_latency
        d_remote = rt.msgs_remote - remote0
        total = (rt.msgs_local - local0) + d_remote
        return {
            "requests": lat.count,
            "p99_ms": 1e3 * (lat.p99 if lat.count else 0.0) / ts,
            "remote_fraction": d_remote / total if total else 0.0,
            "timed_out": rt.requests_timed_out - timed0,
            "retries": rt.request_retries - retry0,
            "failovers": rt.failovers - fail0,
        }

    pre = window(WARMUP + PRE_WINDOW)

    # Probe the cluster mid-outage without splitting the fault window
    # (a split would swallow the failover burst between the windows).
    probe = {}

    def snapshot_mid_outage():
        probe["census"] = dict(rt.census())
        probe["dead"] = rt.silos[VICTIM].dead

    rt.sim.schedule(T_KILL + 5.0 - rt.sim.now, snapshot_mid_outage)
    fault = window(SETTLE_UNTIL)
    post = window(SETTLE_UNTIL + POST_WINDOW)
    return exp, pre, fault, post, probe["census"], probe["dead"]


def test_cluster_recovers_from_silo_crash(benchmark, show):
    exp, pre, fault, post, mid_census, victim_dead = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    rt = exp.runtime

    rows = [[name, w["requests"], w["p99_ms"], 100 * w["remote_fraction"],
             w["timed_out"], w["retries"], w["failovers"]]
            for name, w in (("pre-fault", pre), ("fault", fault),
                            ("post-recovery", post))]
    show(render_table(
        ["window", "requests", "p99 ms", "remote %", "timeouts",
         "retries", "failovers"],
        rows,
        title=f"recovery — silo {VICTIM} killed at t={T_KILL:.0f}s, "
              f"restarted at t={T_RESTART:.0f}s (ActOp partitioning on)",
        floatfmt=".2f",
    ))

    # While dead, the victim hosts nothing and is marked dead.
    assert victim_dead
    assert mid_census[VICTIM] == 0
    # The displaced actors failed over (re-placed on the survivors) and
    # traffic kept flowing through the outage.
    assert fault["failovers"] > 0
    assert fault["requests"] > 0
    # No request hangs: whatever is still in flight at the end is
    # bounded by one timeout's worth of traffic, not a leak.
    assert rt.inflight_requests < 500
    # After restart + settle, the locality fingerprint re-converges
    # (10% relative, with the same 0.02 absolute floor the `repro
    # faults` CLI applies for near-zero baselines — ActOp pushes the
    # pre-fault remote fraction under 5%, where pure-relative tolerance
    # would be sub-noise).
    drift = abs(post["remote_fraction"] - pre["remote_fraction"])
    assert drift <= max(0.10 * pre["remote_fraction"], 0.02), (pre, post)
    # And the revived silo is hosting actors again.
    assert not rt.silos[VICTIM].dead
    assert rt.census()[VICTIM] > 0

    show(f"\n  remote fraction: pre {pre['remote_fraction']:.3f} -> "
         f"post {post['remote_fraction']:.3f} (drift {drift:.3f}); "
         f"victim re-hosts {rt.census()[VICTIM]} actors")
    benchmark.extra_info.update(
        pre_remote=round(pre["remote_fraction"], 4),
        post_remote=round(post["remote_fraction"], 4),
        failovers=fault["failovers"],
        timeouts=fault["timed_out"],
        retries=fault["retries"],
    )
