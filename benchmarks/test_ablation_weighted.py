"""§4.2 extension ablation: actor sizes and migration costs.

The paper sketches but does not evaluate the generalization to
heterogeneous actor sizes ("the evaluation of these extensions is
outside the scope of this paper").  We evaluate it: on a Halo-shaped
graph with heavy hub actors (game state dwarfs a player's), compare

* the size-blind algorithm (counts only) — balanced by actor count but
  potentially badly imbalanced in memory;
* the weighted variant — balance and candidate budgets in size units,
  with a migration penalty proportional to state size.

Reported: cut cost, count-imbalance, size-imbalance, migrated bytes.
"""

import random

from repro.core.partitioning.offline import OfflinePartitioner
from repro.core.partitioning.weighted import WeightedOfflinePartitioner
from repro.graph.generators import clustered_graph
from repro.graph.quality import cut_cost, max_imbalance
from repro.bench.reporting import render_table

SERVERS = 6
HUB_SIZE = 20.0


def build():
    graph = clustered_graph(48, 9, intra_weight=10.0,
                            inter_edges_per_cluster=1,
                            rng=random.Random(7))
    sizes = {v: (HUB_SIZE if v % 9 == 0 else 1.0) for v in graph.vertices()}
    return graph, sizes


def size_imbalance(graph, sizes, assignment):
    loads = [0.0] * SERVERS
    for v, p in assignment.items():
        loads[p] += sizes[v]
    return max(loads) - min(loads)


def run_both():
    graph, sizes = build()
    rng = random.Random(1)
    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    initial = {v: i % SERVERS for i, v in enumerate(vertices)}

    unweighted = OfflinePartitioner(graph, SERVERS, delta=8, k=48, seed=2,
                                    initial=dict(initial))
    unweighted.run(max_sweeps=40)

    weighted = WeightedOfflinePartitioner(
        graph, sizes, SERVERS,
        size_delta=24.0, size_budget=64.0, migration_penalty=0.05,
        seed=2, initial=dict(initial),
    )
    weighted.run(max_sweeps=40)
    return graph, sizes, initial, unweighted, weighted


def test_weighted_extension(benchmark, show):
    graph, sizes, initial, unweighted, weighted = benchmark.pedantic(
        run_both, rounds=1, iterations=1,
    )

    rows = [
        ["random initial", cut_cost(graph, initial),
         max_imbalance(initial, SERVERS),
         size_imbalance(graph, sizes, initial), "-"],
        ["Alg. 1 (size-blind)", unweighted.cost, unweighted.imbalance,
         size_imbalance(graph, sizes, unweighted.assignment),
         unweighted.total_migrations],
        ["Alg. 1 weighted (§4.2 ext.)", weighted.cost,
         max_imbalance(weighted.assignment, SERVERS),
         weighted.size_imbalance,
         f"{weighted.total_migrated_size:.0f} size units"],
    ]
    show(render_table(
        ["configuration", "cut cost", "count imbalance", "size imbalance",
         "migration volume"],
        rows,
        title="§4.2 extension — heterogeneous actor sizes "
              f"(hubs {HUB_SIZE:.0f}x player size, {SERVERS} servers)",
        floatfmt=".0f",
    ))

    random_cut = cut_cost(graph, initial)
    # Both variants recover most locality...
    assert unweighted.cost < 0.45 * random_cut
    assert weighted.cost < 0.45 * random_cut
    # ...but only the weighted variant controls *memory* imbalance:
    blind_size_gap = size_imbalance(graph, sizes, unweighted.assignment)
    assert weighted.size_imbalance < blind_size_gap
    # and respects its own tolerance within the pairwise-drift bound.
    assert weighted.size_imbalance <= 3 * 24.0
