"""§3 motivation: remote messaging dominates under random placement.

Paper numbers (10 servers, 100K players, 6K req/s, 80% CPU):

* ~90% of actor-to-actor messages are remote under random placement;
* each client request fans out into 18 actor-to-actor messages;
* co-locating communicating actors cuts median/p95/p99 from
  41/450/736 ms to 24/100/225 ms.
"""

from conftest import halo_result

from repro.bench.reporting import render_table


def test_motivation_remote_messaging_and_colocation_benefit(benchmark, show):
    def experiment():
        baseline = halo_result(load_fraction=1.0, partitioning=False)
        colocated = halo_result(load_fraction=1.0, partitioning=True)
        return baseline, colocated

    baseline, colocated = benchmark.pedantic(experiment, rounds=1, iterations=1)

    show(render_table(
        ["configuration", "remote msg %", "median ms", "p95 ms", "p99 ms"],
        [
            ["paper: random placement", 90.0, 41.0, 450.0, 736.0],
            ["ours:  random placement", 100 * baseline.remote_fraction,
             baseline.median * 1e3, baseline.p95 * 1e3, baseline.p99 * 1e3],
            ["paper: co-located", "-", 24.0, 100.0, 225.0],
            ["ours:  co-located (ActOp)", 100 * colocated.remote_fraction,
             colocated.median * 1e3, colocated.p95 * 1e3, colocated.p99 * 1e3],
        ],
        title="§3 motivation — locality matters",
    ))

    benchmark.extra_info["baseline"] = baseline.summary_ms()
    benchmark.extra_info["colocated"] = colocated.summary_ms()

    # Shape assertions (paper: ~90% remote; co-location wins everywhere).
    assert baseline.remote_fraction > 0.80
    assert colocated.remote_fraction < 0.30
    assert colocated.median < baseline.median
    assert colocated.p99 < baseline.p99


def test_motivation_fanout_arithmetic(benchmark, show):
    """Each status request to an in-game player triggers 18 actor
    messages: 1+1 player<->game plus 8+8 broadcast round trips."""
    from repro.actor.runtime import ActorRuntime, ClusterConfig
    from repro.workloads.halo import HaloConfig, HaloWorkload

    def experiment():
        rt = ActorRuntime(ClusterConfig(num_servers=10, seed=5))
        w = HaloWorkload(rt, HaloConfig(
            target_players=160, pool_target=16, request_rate=40.0,
            game_duration=(30.0, 40.0),
        ))
        w.start()
        rt.run(until=3.0)
        w.stop()
        rt.run(until=6.0)
        base = rt.msgs_local + rt.msgs_remote
        playing = next(iter(w.playing))
        rt.client_request(rt.ref(w.PLAYER, playing), "request_status", 0)
        rt.run(until=9.0)
        return (rt.msgs_local + rt.msgs_remote) - base

    messages = benchmark.pedantic(experiment, rounds=1, iterations=1)
    show(f"\n§3 fan-out: one client request -> {messages} actor-to-actor "
         "messages (paper: 18)")
    assert messages == 18
