"""Theorem 1: stability of Algorithm 1 on static graphs.

The paper proves (and Fig. 10a empirically shows) that the pairwise
protocol converges: communication cost decreases monotonically with
every migration and the system reaches a locally optimal balanced
partition in finitely many executions.  This bench quantifies it on
static graphs: cost trajectory, sweeps to quiescence, final balance.
"""

import random

from repro.core.partitioning.offline import OfflinePartitioner
from repro.graph.generators import clustered_graph, power_law_graph, random_graph
from repro.bench.reporting import render_table

GRAPHS = [
    ("clustered (Halo-shaped)",
     lambda: clustered_graph(60, 9, intra_weight=10.0,
                             inter_edges_per_cluster=1,
                             rng=random.Random(1))),
    ("power-law", lambda: power_law_graph(500, attach=2,
                                          rng=random.Random(2))),
    ("uniform random", lambda: random_graph(500, mean_degree=6.0,
                                            rng=random.Random(3))),
]
SERVERS = 6
DELTA = 8


def run_one(build):
    graph = build()
    part = OfflinePartitioner(graph, SERVERS, delta=DELTA, k=48, seed=4)
    sweeps = 0
    for sweeps in range(1, 61):
        moved = 0
        for p in range(SERVERS):
            moved += part.run_round(p)
        if moved == 0:
            break
    return graph, part, sweeps


def test_thm1_monotone_convergence(benchmark, show):
    results = benchmark.pedantic(
        lambda: [(name, *run_one(build)) for name, build in GRAPHS],
        rounds=1, iterations=1,
    )

    rows = []
    for name, graph, part, sweeps in results:
        history = part.cost_history
        rows.append([
            name, f"{history[0]:.0f}", f"{history[-1]:.0f}",
            f"{100 * (1 - history[-1] / history[0]):.0f}%",
            sweeps, part.total_migrations, part.imbalance,
        ])
    show(render_table(
        ["graph", "initial cut", "final cut", "reduction", "sweeps",
         "migrations", "imbalance"],
        rows,
        title=f"Theorem 1 — convergence on static graphs "
              f"({SERVERS} servers, delta={DELTA})",
    ))

    for name, graph, part, sweeps in results:
        history = part.cost_history
        # monotone non-increasing cost with every migration batch
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:])), name
        # converged within the sweep budget
        assert sweeps < 60, name
        # converged state is quiet
        assert sum(part.run_round(p) for p in range(SERVERS)) == 0, name
        # cost strictly improved on every graph family
        assert history[-1] < history[0], name
