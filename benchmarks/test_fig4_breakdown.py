"""Fig. 4: average latency breakdown of one request on a single server.

Paper setup: counter app, 15K req/s on 8K actors, default Orleans thread
allocation (a thread per stage per core).  Paper finding: queuing delay
dominates — receive queue 32.9%, worker queue 24.2%, sender queue 31.3%,
while per-stage processing is <0.3% each, network 0.92%, other 10.1%.

We reproduce the counter pipeline (receiver -> worker -> client sender)
and report the same eight components.  One mapping note: the paper's
"other" bucket absorbs OS queuing; ours absorbs CPU run-queue (ready)
time, which is the simulated analogue.
"""

from conftest import show  # noqa: F401  (fixture re-export)

from repro.bench.harness import COUNTER_TIME_SCALE, CounterExperiment
from repro.bench.reporting import render_table
from repro.obs import Observability, cross_check, recorder_totals, stage_totals

PAPER = {
    "recv queue": 32.87,
    "recv processing": 0.19,
    "worker queue": 24.19,
    "worker processing": 0.29,
    "sender queue": 31.25,
    "sender processing": 0.16,
    "network": 0.92,
    "other": 10.13,
}


# The paper's 15K req/s sits just below their server's saturation point;
# our calibrated saturation point for the counter pipeline is ~19.8K, so
# we measure at 19.6K — the same *operating point* (queues dominating,
# system still stable), not the same absolute rate.
SATURATION_POINT_RATE = 19_600.0


def run_breakdown():
    exp = CounterExperiment(request_rate=SATURATION_POINT_RATE)
    rt = exp.runtime
    server = rt.silos[0].server
    # Causal tracing rides along (neutrally) so the same run validates
    # the trace-derived breakdown against the recorder-derived one.
    obs = Observability(rt, sample_rate=1.0)
    exp.workload.start()
    rt.run(until=10.0)
    rt.reset_latency_stats()
    server.begin_window()
    t0 = rt.sim.now
    rt.run(until=30.0)
    windows = server.end_window()
    trace_error, _ = cross_check(
        stage_totals(obs.spans, t0, rt.sim.now),
        recorder_totals({0: windows}),
    )
    mean_e2e = rt.client_latency.mean

    ts = COUNTER_TIME_SCALE
    net = 2 * rt.network.base_latency  # one hop in, one hop out

    def stage_parts(name):
        w = windows[name]
        return w.mean_queue_wait, w.mean_x, w.mean_ready

    rq, rx, rr = stage_parts("receiver")
    wq, wx, wr = stage_parts("worker")
    sq, sx, sr = stage_parts("client_sender")
    components = {
        "recv queue": rq,
        "recv processing": rx,
        "worker queue": wq,
        "worker processing": wx,
        "sender queue": sq,
        "sender processing": sx,
        "network": net,
    }
    accounted = sum(components.values())
    components["other"] = max(0.0, mean_e2e - accounted)
    percents = {k: 100 * v / mean_e2e for k, v in components.items()}
    return percents, mean_e2e / ts, trace_error


def test_fig4_latency_breakdown(benchmark, show):
    percents, mean_e2e, trace_error = benchmark.pedantic(run_breakdown, rounds=1,
                                                         iterations=1)
    rows = [[name, PAPER[name], percents[name]] for name in PAPER]
    show(render_table(
        ["component", "paper % of e2e", "ours % of e2e"],
        rows,
        title=f"Fig. 4 — latency breakdown (our mean e2e = {mean_e2e*1e3:.2f} ms)",
    ))
    benchmark.extra_info["percents"] = {k: round(v, 2) for k, v in percents.items()}

    queue_share = (percents["recv queue"] + percents["worker queue"]
                   + percents["sender queue"])
    processing_share = (percents["recv processing"]
                        + percents["worker processing"]
                        + percents["sender processing"])
    # The paper's qualitative findings:
    assert queue_share > 50.0, "queuing delay must dominate end-to-end latency"
    assert processing_share < queue_share / 3
    assert percents["network"] < 25.0
    # The causal traces must tell the same story as the recorders.
    assert trace_error < 0.01, (
        f"trace-derived stage totals diverge from recorders: {trace_error:.4f}"
    )
