"""§6.1 throughput: ActOp doubles peak system throughput.

Paper finding: random partitioning starts rejecting requests at 6K req/s
(80% CPU); with ActOp the same cluster sustains 12K req/s — 2x — because
co-location removes the serialization CPU work.

We ramp the offered load from the calibrated 80%-CPU point upward with a
bounded receiver admission queue, and find where each configuration
starts rejecting.  Goodput is completed requests per second (normalized
to paper-equivalent rate by the time scale).
"""

from conftest import halo_result, scaled_duration

from repro.bench.harness import HALO_RATE_FULL, HALO_TIME_SCALE
from repro.bench.reporting import render_table

LOAD_STEPS = (1.0, 1.5, 2.0)
QUEUE_BOUND = 200


def _ramp():
    rows = {}
    for partitioning in (False, True):
        series = []
        for load in LOAD_STEPS:
            result = halo_result(
                load_fraction=load,
                partitioning=partitioning,
                warmup=50.0,
                duration=50.0,
                max_receiver_queue=QUEUE_BOUND,
            )
            offered = HALO_RATE_FULL * load
            duration = scaled_duration(50.0)
            goodput = result.requests * HALO_TIME_SCALE / duration
            reject_share = result.rejected / max(
                1, result.rejected + result.requests
            )
            series.append((offered, goodput, reject_share,
                           result.cpu_utilization))
        rows[partitioning] = series
    return rows


def sustainable_goodput(series):
    """Goodput at the highest offered load served without meaningful
    rejection (<2%) — the paper's notion of peak throughput ("starts
    dropping requests at 6K req/s")."""
    sustained = [g for _, g, r, _ in series if r < 0.02]
    return max(sustained) if sustained else 0.0


def test_throughput_peak_doubles(benchmark, show):
    ramp = benchmark.pedantic(_ramp, rounds=1, iterations=1)

    table = []
    for partitioning, series in ramp.items():
        label = "ActOp" if partitioning else "baseline"
        for offered, goodput, rejects, cpu in series:
            table.append([
                label, offered, goodput, 100 * rejects, 100 * cpu,
            ])
    show(render_table(
        ["config", "offered req/s", "goodput req/s", "rejected %", "CPU %"],
        table,
        title="§6.1 — peak throughput ramp (paper: baseline saturates at "
              "6K, ActOp sustains 12K = 2x)",
        floatfmt=".0f",
    ))

    base_peak = sustainable_goodput(ramp[False])
    actop_peak = sustainable_goodput(ramp[True])
    ratio = actop_peak / base_peak
    show(f"\n  peak goodput: baseline={base_peak:.0f}, ActOp={actop_peak:.0f} "
         f"req/s -> {ratio:.2f}x (paper: 2x)")
    benchmark.extra_info.update(
        base_peak=round(base_peak), actop_peak=round(actop_peak),
        ratio=round(ratio, 2),
    )

    # Baseline must visibly saturate within the ramp...
    assert any(r > 0.02 for _, _, r, _ in ramp[False])
    # ...and ActOp must push peak goodput well beyond it (paper: ~2x).
    assert ratio > 1.5
