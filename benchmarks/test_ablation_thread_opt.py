"""§5.3 ablation: closed form vs numeric solver vs brute force.

Theorem 2's value is operational: the closed form makes re-optimizing the
thread allocation cheap enough to run continuously.  This ablation checks
(a) the closed form hits the brute-force integer optimum (after
integerization) on representative instances, (b) it agrees with the
convex numeric solver, and (c) it is orders of magnitude cheaper.
"""

import time

from repro.core.threads.model import ThreadAllocationProblem
from repro.core.threads.optimizer import (
    grid_search,
    integerize,
    solve_closed_form,
    solve_numeric,
)
from repro.queueing.jackson import StageLoad
from repro.bench.reporting import render_table

INSTANCES = {
    "heartbeat-like (3 hot stages)": ThreadAllocationProblem(
        stages=[
            StageLoad(3000.0, 3600.0, 1.0, "receiver"),
            StageLoad(3000.0, 1700.0, 1.0, "worker"),
            StageLoad(3000.0, 3300.0, 1.0, "client_sender"),
        ],
        processors=8, eta=5e-4,
    ),
    "halo-like (4 stages, skewed)": ThreadAllocationProblem(
        stages=[
            StageLoad(8000.0, 9000.0, 1.0, "receiver"),
            StageLoad(5000.0, 6000.0, 1.0, "worker"),
            StageLoad(7000.0, 8000.0, 1.0, "server_sender"),
            StageLoad(600.0, 8000.0, 1.0, "client_sender"),
        ],
        processors=8, eta=5e-4,
    ),
    "blocking I/O stage": ThreadAllocationProblem(
        stages=[
            StageLoad(2000.0, 4000.0, 1.0, "receiver"),
            StageLoad(2000.0, 250.0, 0.25, "worker(io)"),
            StageLoad(2000.0, 4000.0, 1.0, "sender"),
        ],
        processors=8, eta=5e-4,
    ),
}


def time_solver(solver, problem, repeats=200):
    start = time.perf_counter()
    for _ in range(repeats):
        result = solver(problem)
    return result, (time.perf_counter() - start) / repeats


def run_ablation():
    rows = []
    for name, problem in INSTANCES.items():
        closed, t_closed = time_solver(solve_closed_form, problem)
        numeric, t_numeric = time_solver(solve_numeric, problem, repeats=20)
        assert closed is not None and numeric is not None
        integral = integerize(problem, closed)
        start = time.perf_counter()
        grid_best, grid_obj = grid_search(problem, max_threads=12)
        t_grid = time.perf_counter() - start
        rows.append([
            name,
            str(integral), problem.objective(integral),
            str(grid_best), grid_obj,
            t_closed * 1e6, t_numeric * 1e6, t_grid * 1e6,
            max(abs(a - b) for a, b in zip(closed, numeric)),
        ])
    return rows


def test_ablation_thread_optimizer(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    show(render_table(
        ["instance", "closed-form (int)", "objective", "grid optimum",
         "objective", "closed us", "SLSQP us", "grid us", "max |cf-num|"],
        rows,
        title="§5.3 ablation — Theorem 2 closed form vs alternatives",
        floatfmt=".4g",
    ))

    for row in rows:
        closed_obj, grid_obj = float(row[2]), float(row[4])
        # (a) integerized closed form matches the brute-force optimum
        #     to within rounding slack;
        assert closed_obj <= grid_obj * 1.05
        # (b) agreement with the convex solver at the fractional level;
        assert float(row[8]) < 0.05
        # (c) the closed form is far cheaper than both alternatives.
        t_closed, t_numeric, t_grid = float(row[5]), float(row[6]), float(row[7])
        assert t_closed < t_numeric / 10
        assert t_closed < t_grid / 10
