"""Fig. 10(f): the partitioning algorithm scales with the number of actors.

Paper setup: 10K / 100K / 1M live players at a fixed 4K req/s; the
distributed algorithm keeps delivering large latency reductions at every
population size (median ~30-55%, p99 ~60-70%).

We sweep the player population at a fixed 2/3 load fraction.  The request
rate scales with population (per-actor load constant), which stresses the
partitioning machinery exactly as more actors do in the paper: bigger
per-server views, bigger candidate sets, more concurrent churn.
"""

from conftest import BENCH_SCALE, halo_result

from repro.bench.harness import improvement
from repro.bench.reporting import render_table

POPULATIONS = [max(300, int(p * BENCH_SCALE)) for p in (500, 1_000, 2_000)]
PAPER = {  # population label -> (median%, p95%, p99%) improvements
    "10K": (55.0, 62.0, 60.0),
    "100K": (42.0, 64.0, 69.0),
    "1M": (30.0, 60.0, 64.0),
}


def _sweep():
    out = []
    for players in POPULATIONS:
        base = halo_result(load_fraction=2 / 3, partitioning=False,
                           players=players)
        opt = halo_result(load_fraction=2 / 3, partitioning=True,
                          players=players)
        out.append((players, base, opt))
    return out


def test_fig10f_scaling_with_actor_count(benchmark, show):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    improvements = []
    for (players, base, opt), paper_label in zip(sweep, PAPER):
        med = improvement(base.median, opt.median)
        p99 = improvement(base.p99, opt.p99)
        improvements.append((med, p99))
        paper_med, _, paper_p99 = PAPER[paper_label]
        rows.append([
            f"{players} (paper {paper_label})", paper_med, med,
            paper_p99, p99, opt.migrations,
        ])
    show(render_table(
        ["players", "paper med%", "ours med%", "paper p99%", "ours p99%",
         "migrations"],
        rows,
        title="Fig. 10(f) — improvement vs population (fixed per-actor load)",
        floatfmt=".1f",
    ))
    benchmark.extra_info["improvements"] = [
        tuple(round(x, 1) for x in imp) for imp in improvements
    ]

    # The paper's claim: the benefit persists as the actor count grows —
    # no collapse at the largest population.  (At this 2/3-load point our
    # baseline tails are short, so median improvements carry the claim;
    # p99 must still never regress.)
    for med, p99 in improvements:
        assert med > 30.0
        assert p99 > 0.0
    largest_med, _ = improvements[-1]
    assert largest_med > 0.5 * max(m for m, _ in improvements)
