"""Graceful degradation: admission control under a load ramp.

The resilience claim: with bounded admission, a server pushed past
saturation keeps serving *admitted* requests at pre-overload latency and
sheds the excess explicitly; without it, the receiver queue grows
without bound and every request's latency diverges.

We drive the single-server counter workload at 70% of the calibrated
15K req/s saturation point, then ramp to 160% mid-run (the workload
re-reads its rate per arrival, so the ramp is instantaneous), and
compare served-request p99 before vs during overload.

A note on policy: ``drop_oldest`` used to livelock here — every admitted
request was evicted by newer arrivals before it could finish, so a
persistent ramp drove goodput to zero while the server stayed busy.  It
now sheds from the oldest *non-in-flight* entry (a request parked in
retry backoff); with every slot dispatched it degenerates to rejecting
the newcomer, so in-flight work always completes and sustained overload
makes progress.  Both policies are driven through the ramp below and
must hold served-request p99 while shedding the excess.
"""

from repro.bench.harness import CounterExperiment
from repro.bench.reporting import render_table
from repro.faults import AdmissionConfig, ResilienceConfig

PRE_RATE = 10_500.0     # 0.7 x saturation
OVERLOAD_RATE = 24_000.0  # 1.6 x saturation
WARMUP = 15.0
PRE_WINDOW = 15.0
OVERLOAD_WINDOW = 25.0
CAPACITY = 32


def _run(admission, label="shedding"):
    exp = CounterExperiment(
        request_rate=PRE_RATE,
        resilience=(ResilienceConfig(admission=admission)
                    if admission is not None else None),
        seed=7,
        label=label if admission is not None else "baseline",
    )
    rt = exp.runtime
    ts = exp.time_scale
    exp.workload.start()
    exp.cluster.start()
    rt.run(until=WARMUP)

    def window(until):
        rt.reset_latency_stats()
        done0, shed0 = rt.requests_completed, rt.requests_shed
        rt.run(until=until)
        lat = rt.client_latency
        return {
            "p99_ms": 1e3 * (lat.p99 if lat.count else 0.0) / ts,
            "served": rt.requests_completed - done0,
            "shed": rt.requests_shed - shed0,
        }

    pre = window(WARMUP + PRE_WINDOW)
    exp.workload.config.request_rate = OVERLOAD_RATE / ts
    over = window(WARMUP + PRE_WINDOW + OVERLOAD_WINDOW)
    return pre, over


def test_shedding_holds_p99_through_overload(benchmark, show):
    def experiment():
        return {
            "baseline": _run(None),
            "reject": _run(AdmissionConfig(capacity=CAPACITY,
                                           policy="reject"),
                           label="reject"),
            "drop_oldest": _run(AdmissionConfig(capacity=CAPACITY,
                                                policy="drop_oldest"),
                                label="drop_oldest"),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for label, (pre, over) in results.items():
        rows.append([f"{label} pre-ramp", pre["p99_ms"], pre["served"],
                     pre["shed"]])
        rows.append([f"{label} overload", over["p99_ms"], over["served"],
                     over["shed"]])
    show(render_table(
        ["window", "p99 ms", "served", "shed"],
        rows,
        title=f"overload shedding — counter ramp {PRE_RATE:.0f} -> "
              f"{OVERLOAD_RATE:.0f} req/s, admission cap {CAPACITY}",
        floatfmt=".2f",
    ))

    base_pre, base_over = results["baseline"]
    shed_pre, shed_over = results["reject"]
    drop_pre, drop_over = results["drop_oldest"]
    # Without admission control, overload diverges (queueing delay grows
    # with the backlog for the entire window).
    assert base_over["p99_ms"] > 10 * base_pre["p99_ms"]
    # With it, the served-request p99 stays within 2x of pre-ramp...
    assert shed_over["p99_ms"] <= 2 * shed_pre["p99_ms"]
    # ...while the excess is shed explicitly and goodput holds near the
    # service capacity (the baseline "serves" more only by answering
    # seconds late).
    assert shed_over["shed"] > 0
    assert shed_over["served"] > 0.9 * base_over["served"]
    # drop_oldest no longer livelocks: in-flight work is never evicted,
    # so under the sustained ramp it serves like reject does instead of
    # abandoning every admitted request.
    assert drop_over["p99_ms"] <= 2 * drop_pre["p99_ms"]
    assert drop_over["shed"] > 0
    assert drop_over["served"] > 0.9 * shed_over["served"]
    benchmark.extra_info.update(
        base_pre_p99=round(base_pre["p99_ms"], 3),
        base_over_p99=round(base_over["p99_ms"], 3),
        shed_pre_p99=round(shed_pre["p99_ms"], 3),
        shed_over_p99=round(shed_over["p99_ms"], 3),
        drop_pre_p99=round(drop_pre["p99_ms"], 3),
        drop_over_p99=round(drop_over["p99_ms"], 3),
        shed=shed_over["shed"],
        drop_shed=drop_over["shed"],
    )
